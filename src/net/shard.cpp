#include "net/shard.hpp"

#include <unordered_map>
#include <unordered_set>

#include "fhe/serialize.hpp"
#include "net/messages.hpp"

namespace poe::net {

using service::RequestStatus;

ShardServer::ShardServer(const hhe::HheConfig& config, const fhe::Bgv& bgv,
                         service::ServiceConfig service_config,
                         std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      service_(config, bgv, service_config, std::move(shared_keys)) {}

ShardServer::Exit ShardServer::serve(FrameChannel& ch) {
  ExecContext& exec = bgv_.rns().exec();
  for (;;) {
    std::optional<FrameChannel::Received> msg;
    try {
      msg = ch.recv();
    } catch (const WireError&) {
      return Exit::kConnectionLost;
    }
    if (!msg) return Exit::kConnectionLost;  // peer closed cleanly
    // An armed `shard.kill` models the process dying right here — after the
    // request arrived, before any response. The connection is wrecked so
    // the router observes exactly what a crashed peer looks like.
    if (fault_forced(exec, "shard.kill")) {
      ch.shutdown();
      return Exit::kKilled;
    }
    try {
      switch (msg->type) {
        case MsgType::kPing:
          ch.send(MsgType::kPong, {});
          break;
        case MsgType::kInstallSession: {
          AckMsg ack;
          try {
            const service::SessionState state =
                service::deserialize_session_state(msg->payload);
            ack.ok = service_.import_session(state, &ack.error);
          } catch (const poe::Error& e) {
            ack.ok = false;
            ack.error = e.what();
          }
          ch.send(MsgType::kInstallAck, encode_ack(ack));
          break;
        }
        case MsgType::kProcessBatch:
          handle_process_batch(ch, msg->payload, msg->stall_s);
          break;
        case MsgType::kShutdown:
          return Exit::kShutdown;
        default:
          // Valid frame, wrong direction (e.g. kOnboardKey at a shard):
          // typed protocol error, connection stays up.
          ch.send(MsgType::kError,
                  encode_ack(AckMsg{
                      false, std::string("unexpected frame type: ") +
                                 to_string(msg->type)}));
          break;
      }
    } catch (const WireError&) {
      // Response send failed (torn frame / dead peer): the service state is
      // intact, only the connection is gone.
      return Exit::kConnectionLost;
    }
  }
}

void ShardServer::handle_process_batch(FrameChannel& ch,
                                       std::span<const std::uint8_t> payload,
                                       double recv_stall_s) {
  ProcessResultMsg out;
  out.stall_s = recv_stall_s;
  ProcessBatchMsg batch;
  try {
    batch = decode_process_batch(payload);
  } catch (const WireError& e) {
    ch.send(MsgType::kError, encode_ack(AckMsg{false, e.what()}));
    return;
  }
  service::ServiceReport report;
  const std::vector<service::TranscipherResult> results =
      service_.process(batch.requests, &report);

  // Serialize each distinct batch-output ciphertext once; blocks reference
  // it by index (the wire mirror of PlacedBlock's shared_ptr sharing).
  std::unordered_map<const fhe::Ciphertext*, std::uint32_t> ct_index;
  out.results.reserve(results.size());
  for (const service::TranscipherResult& res : results) {
    WireResult wr;
    wr.client_id = res.client_id;
    wr.nonce = res.nonce;
    wr.status = res.status;
    wr.error = res.error;
    for (const service::PlacedBlock& block : res.blocks) {
      auto [it, fresh] = ct_index.try_emplace(
          block.ct.get(), static_cast<std::uint32_t>(out.cts.size()));
      if (fresh) {
        out.cts.push_back(fhe::serialize_ciphertext(bgv_.rns(), *block.ct));
      }
      wr.blocks.push_back(WireBlockRef{
          it->second, static_cast<std::uint32_t>(block.tile),
          static_cast<std::uint32_t>(block.len)});
    }
    out.results.push_back(std::move(wr));
  }

  // Piggyback key-less session snapshots for every session this wave
  // touched — the router's replay cache must know each nonce we accepted
  // BEFORE the client sees the ack, or a shard death would reopen it.
  std::unordered_set<std::uint64_t> touched;
  for (const auto& req : batch.requests) {
    if (touched.insert(req.client_id).second &&
        service_.has_session(req.client_id)) {
      out.session_updates.push_back(service::serialize_session_state(
          service_.export_session(req.client_id, /*include_key=*/false)));
    }
  }

  out.report.requests = report.requests;
  out.report.blocks = report.blocks;
  out.report.batches = report.batches;
  out.report.cross_tenant_batches = report.cross_tenant_batches;
  out.report.faults = report.faults;
  ch.send(MsgType::kProcessResult, encode_process_result(out));
}

}  // namespace poe::net
