// The front-end router: consistent-hash client -> shard fan-out over frame
// channels, lazy session install from the key manager, and
// rebalance-from-serialized-session-state when a shard dies.
//
// Replay safety across shard death is the router's core invariant. Every
// kProcessResult piggybacks key-less SessionState snapshots of the sessions
// the wave touched; the router merges them into its nonce-window cache
// BEFORE returning results to the caller. So for every nonce a client ever
// saw acknowledged kOk, the cache holds it — and when a shard dies, the
// sessions are reinstalled on the survivors from enc(K) (fetched from the
// key manager; the router never caches key bytes) plus that cached window.
// A replayed nonce is rejected by the survivor exactly as the dead shard
// would have rejected it. Requests in flight on the dead shard degrade to a
// typed kFailed — their nonces were never acknowledged, so the client may
// retry them.
//
// Slow peers degrade typed too: responses carry the virtual stall charged
// by the `net.peer.stall` chaos site, and a wave whose (echoed + local)
// stall exceeds RouterConfig::peer_timeout_s lands as kTimedOut. The shard
// DID record those nonces — fail-safe direction: a retry gets kNonceReplay,
// never double service.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fhe/context.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/ring.hpp"
#include "service/service.hpp"

namespace poe::net {

struct RouterConfig {
  /// A wave whose virtual peer stall exceeds this degrades to kTimedOut.
  /// 0 = no slow-peer timeout.
  double peer_timeout_s = 0;
  std::size_t ring_vnodes = 64;
};

/// Aggregate accounting for one Router::process call plus lifetime
/// counters. `faults` partitions the call's requests by terminal status
/// (same invariant as ServiceReport::faults).
struct RouterReport {
  std::size_t requests = 0;
  service::FaultStats faults;
  /// Verbatim shard-side reports of the waves this call collected, in shard
  /// order — the cross-process differential suite checks their partition
  /// invariants against the in-process reference.
  std::vector<ShardReportMsg> shard_reports;
  std::size_t shards_lost = 0;          ///< lifetime
  std::size_t sessions_rebalanced = 0;  ///< lifetime
};

class Router {
 public:
  /// `ctx` is the evaluation-domain context results deserialize against
  /// (public CRT data only — the router holds no key material).
  Router(const fhe::RnsContext& ctx, std::vector<FrameChannel> shards,
         FrameChannel key_manager, RouterConfig config = {});

  /// Fan a wave of requests out to the owning shards and collect one
  /// result per request (same order). Router-level degradations are typed:
  /// kUnknownSession (client never onboarded at the key manager), kFailed
  /// (owning shard died mid-wave; session rebalanced, nonce unrecorded),
  /// kTimedOut (peer stall beyond the timeout; nonce IS recorded).
  /// Throws WireError only when the KEY MANAGER channel dies — shard death
  /// is handled, the control plane going away is not.
  std::vector<service::TranscipherResult> process(
      std::span<const service::TranscipherRequest> requests,
      RouterReport* report = nullptr);

  std::size_t shard_count() const { return shards_.size(); }
  bool shard_alive(std::size_t i) const { return ring_.alive(i); }
  std::size_t alive_count() const { return ring_.alive_count(); }
  /// Current owning shard of a client (tests use this to pick placements).
  std::size_t owner(std::uint64_t client) const { return ring_.owner(client); }

  /// Reconnect a dead shard (a supervisor restarted or re-exposed it). The
  /// shard may have lost all session state: every install mark is dropped,
  /// so sessions lazily reinstall from enc(K) + the cached nonce windows.
  void revive_shard(std::size_t i, FrameChannel fresh);

  /// Replace a dead key-manager channel (chaos recovery).
  void reset_key_manager(FrameChannel fresh) { km_ = std::move(fresh); }

  std::size_t shards_lost() const { return shards_lost_; }
  std::size_t sessions_rebalanced() const { return sessions_rebalanced_; }

 private:
  /// Make sure `client` has a session installed on its owning shard;
  /// fetches enc(K) from the key manager and merges the cached nonce
  /// window. False with `error` when the client never onboarded or the
  /// install was rejected.
  bool ensure_session(std::uint64_t client, std::string* error);

  /// Mark a shard dead, drop every (now stale) install mark and flag a
  /// rebalance. The reinstall itself is deferred to
  /// rebalance_dead_sessions() — pushing installs at survivors that still
  /// owe an in-flight response would swallow the pending frame.
  void handle_shard_death(std::size_t i);

  /// Reinstall every cached session onto its current owner (no-op unless a
  /// death flagged it). Called when no response is in flight: at the end of
  /// a process() wave. Installs that fail (another death mid-loop) are
  /// retried lazily by the next ensure_session.
  void rebalance_dead_sessions();

  void apply_session_update(std::span<const std::uint8_t> bytes);

  const fhe::RnsContext& ctx_;
  std::vector<FrameChannel> shards_;
  FrameChannel km_;
  RouterConfig config_;
  HashRing ring_;
  /// Per shard: clients whose session is installed there. Cleared wholesale
  /// on every topology change — after a death or revive, ownership moved,
  /// and a stale install mark could leave a survivor holding an outdated
  /// replay window.
  std::vector<std::unordered_set<std::uint64_t>> installed_;
  /// Key-less session snapshots, merged from every response piggyback.
  std::unordered_map<std::uint64_t, service::SessionState> cache_;
  std::size_t shards_lost_ = 0;
  std::size_t sessions_rebalanced_ = 0;
  bool rebalance_pending_ = false;
};

}  // namespace poe::net
