#include "net/messages.hpp"

namespace poe::net {

namespace {
// Element-count prefixes are bounded by the bytes that could possibly back
// them (one byte per element minimum) before any reserve — the same
// discipline WireReader::blob applies to raw byte runs.
std::uint32_t checked_count(WireReader& r, std::size_t min_elem_bytes,
                            const char* what) {
  const std::uint32_t count = r.u32();
  if (std::uint64_t{count} * min_elem_bytes > r.remaining()) {
    throw WireError(std::string(what) + " count " + std::to_string(count) +
                    " exceeds the remaining payload");
  }
  return count;
}

service::RequestStatus decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(service::RequestStatus::kFailed)) {
    throw WireError("unknown request status " + std::to_string(raw));
  }
  return static_cast<service::RequestStatus>(raw);
}

void put_fault_stats(WireWriter& w, const service::FaultStats& f) {
  w.u64(f.ok);
  w.u64(f.rejected);
  w.u64(f.shed);
  w.u64(f.quarantined);
  w.u64(f.timed_out);
  w.u64(f.failed);
  w.u64(f.retries);
  w.u64(f.stage_timeouts);
  w.u64(f.recovered_batches);
  w.u64(f.injected);
}

service::FaultStats get_fault_stats(WireReader& r) {
  service::FaultStats f;
  f.ok = r.u64();
  f.rejected = r.u64();
  f.shed = r.u64();
  f.quarantined = r.u64();
  f.timed_out = r.u64();
  f.failed = r.u64();
  f.retries = r.u64();
  f.stage_timeouts = r.u64();
  f.recovered_batches = r.u64();
  f.injected = r.u64();
  return f;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}
}  // namespace

std::vector<std::uint8_t> encode_onboard_key(const OnboardKeyMsg& m) {
  WireWriter w;
  w.u64(m.client_id);
  w.blob(m.key_bytes);
  return w.take();
}

OnboardKeyMsg decode_onboard_key(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  OnboardKeyMsg m;
  m.client_id = r.u64();
  auto key = r.blob();
  m.key_bytes.assign(key.begin(), key.end());
  r.expect_done("onboard_key");
  return m;
}

std::vector<std::uint8_t> encode_ack(const AckMsg& m) {
  WireWriter w;
  w.u8(m.ok ? 1 : 0);
  w.str(m.error);
  return w.take();
}

AckMsg decode_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  AckMsg m;
  m.ok = r.u8() != 0;
  m.error = r.str();
  r.expect_done("ack");
  return m;
}

std::vector<std::uint8_t> encode_fetch_key(const FetchKeyMsg& m) {
  WireWriter w;
  w.u64(m.client_id);
  return w.take();
}

FetchKeyMsg decode_fetch_key(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  FetchKeyMsg m;
  m.client_id = r.u64();
  r.expect_done("fetch_key");
  return m;
}

std::vector<std::uint8_t> encode_key_state(const KeyStateMsg& m) {
  WireWriter w;
  w.u8(m.found ? 1 : 0);
  w.blob(m.key_bytes);
  return w.take();
}

KeyStateMsg decode_key_state(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  KeyStateMsg m;
  m.found = r.u8() != 0;
  auto key = r.blob();
  m.key_bytes.assign(key.begin(), key.end());
  r.expect_done("key_state");
  return m;
}

std::vector<std::uint8_t> encode_process_batch(const ProcessBatchMsg& m) {
  WireWriter w;
  POE_ENSURE(m.requests.size() <= UINT32_MAX, "too many requests");
  w.u32(static_cast<std::uint32_t>(m.requests.size()));
  for (const auto& req : m.requests) {
    w.u64(req.client_id);
    w.u64(req.nonce);
    POE_ENSURE(req.symmetric_ct.size() <= UINT32_MAX, "request too large");
    w.u32(static_cast<std::uint32_t>(req.symmetric_ct.size()));
    for (const std::uint64_t elem : req.symmetric_ct) w.u64(elem);
  }
  return w.take();
}

ProcessBatchMsg decode_process_batch(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ProcessBatchMsg m;
  const std::uint32_t count = checked_count(r, 20, "request");
  m.requests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::TranscipherRequest req;
    req.client_id = r.u64();
    req.nonce = r.u64();
    const std::uint32_t elems = checked_count(r, 8, "symmetric_ct");
    req.symmetric_ct.reserve(elems);
    for (std::uint32_t e = 0; e < elems; ++e) {
      req.symmetric_ct.push_back(r.u64());
    }
    m.requests.push_back(std::move(req));
  }
  r.expect_done("process_batch");
  return m;
}

std::vector<std::uint8_t> encode_process_result(const ProcessResultMsg& m) {
  WireWriter w;
  POE_ENSURE(m.cts.size() <= UINT32_MAX, "too many ciphertexts");
  w.u32(static_cast<std::uint32_t>(m.cts.size()));
  for (const auto& ct : m.cts) w.blob(ct);
  POE_ENSURE(m.results.size() <= UINT32_MAX, "too many results");
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const auto& res : m.results) {
    w.u64(res.client_id);
    w.u64(res.nonce);
    w.u8(static_cast<std::uint8_t>(res.status));
    w.str(res.error);
    POE_ENSURE(res.blocks.size() <= UINT32_MAX, "too many blocks");
    w.u32(static_cast<std::uint32_t>(res.blocks.size()));
    for (const WireBlockRef& b : res.blocks) {
      w.u32(b.ct_index);
      w.u32(b.tile);
      w.u32(b.len);
    }
  }
  POE_ENSURE(m.session_updates.size() <= UINT32_MAX, "too many updates");
  w.u32(static_cast<std::uint32_t>(m.session_updates.size()));
  for (const auto& update : m.session_updates) w.blob(update);
  w.u64(m.report.requests);
  w.u64(m.report.blocks);
  w.u64(m.report.batches);
  w.u64(m.report.cross_tenant_batches);
  put_fault_stats(w, m.report.faults);
  w.u64(double_bits(m.stall_s));
  return w.take();
}

ProcessResultMsg decode_process_result(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ProcessResultMsg m;
  const std::uint32_t ct_count = checked_count(r, 4, "ciphertext");
  m.cts.reserve(ct_count);
  for (std::uint32_t i = 0; i < ct_count; ++i) {
    auto ct = r.blob();
    m.cts.emplace_back(ct.begin(), ct.end());
  }
  const std::uint32_t res_count = checked_count(r, 25, "result");
  m.results.reserve(res_count);
  for (std::uint32_t i = 0; i < res_count; ++i) {
    WireResult res;
    res.client_id = r.u64();
    res.nonce = r.u64();
    res.status = decode_status(r.u8());
    res.error = r.str();
    const std::uint32_t blocks = checked_count(r, 12, "block");
    res.blocks.reserve(blocks);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      WireBlockRef ref;
      ref.ct_index = r.u32();
      ref.tile = r.u32();
      ref.len = r.u32();
      // A block referencing a ciphertext the message never carried is
      // protocol damage, caught here rather than at a later array index.
      if (ref.ct_index >= ct_count) {
        throw WireError("block references ciphertext " +
                        std::to_string(ref.ct_index) + " of " +
                        std::to_string(ct_count));
      }
      res.blocks.push_back(ref);
    }
    m.results.push_back(std::move(res));
  }
  const std::uint32_t update_count = checked_count(r, 4, "session update");
  m.session_updates.reserve(update_count);
  for (std::uint32_t i = 0; i < update_count; ++i) {
    auto update = r.blob();
    m.session_updates.emplace_back(update.begin(), update.end());
  }
  m.report.requests = r.u64();
  m.report.blocks = r.u64();
  m.report.batches = r.u64();
  m.report.cross_tenant_batches = r.u64();
  m.report.faults = get_fault_stats(r);
  m.stall_s = bits_double(r.u64());
  r.expect_done("process_result");
  return m;
}

}  // namespace poe::net
