// In-process multi-shard deployment over real loopback sockets: N shard
// serving threads (each with its OWN ExecContext and its OWN Bgv — the
// deterministic BgvParams seed makes every shard derive bit-identical key
// material independently, as separate processes would), a key-manager
// thread accepting concurrent connections, and a Router in the caller's
// thread. Every byte between the components crosses a real TCP socket in
// the framed protocol, so the differential and chaos suites exercise the
// exact wire path the multi-process bench deploys — minus only the fork.
//
// The shard threads model a supervisor: a shard whose serve() reports
// kKilled (the `shard.kill` chaos site) has its ShardServer DESTROYED and
// rebuilt — session state is lost exactly as in a real process death — and
// then waits for the router to reconnect (revive_dead_shards()).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fhe/bgv.hpp"
#include "hhe/protocol.hpp"
#include "net/key_manager.hpp"
#include "net/router.hpp"
#include "net/shard.hpp"
#include "service/service.hpp"

namespace poe::net {

struct ClusterConfig {
  std::size_t shards = 2;
  service::ServiceConfig service;  ///< applied to every shard
  RouterConfig router;
};

class LocalCluster {
 public:
  /// `client_ctx`: the evaluation-domain context of the CLIENT-side Bgv
  /// (same deterministic params) — what the router deserializes results
  /// against and the key manager validates uploads against. Public CRT
  /// data only.
  LocalCluster(const hhe::HheConfig& config, const fhe::RnsContext& client_ctx,
               ClusterConfig cluster_config = {});
  ~LocalCluster();

  Router& router() { return *router_; }

  /// Client-side onboarding: a fresh connection to the key manager, one
  /// kOnboardKey upload, one ack. Workers never see this traffic.
  bool onboard(std::uint64_t client_id, std::span<const std::uint8_t> key_bytes,
               std::string* error = nullptr);

  /// Register `injector` (nullptr clears) on every shard's ExecContext —
  /// the chaos sites that live server-side (shard.kill, net.frame.torn on
  /// responses, net.peer.stall) all fire from shard contexts.
  void set_fault_injector(FaultInjector* injector);

  /// Reconnect every shard the router currently considers dead (the
  /// supervisor restoring connectivity after a kill or torn link).
  void revive_dead_shards();

  std::size_t shard_count() const { return shards_.size(); }
  ExecContext& shard_exec(std::size_t i) { return *shards_[i]->exec; }
  const KeyManager& key_manager() const { return *km_; }

 private:
  struct ShardHost {
    std::unique_ptr<ExecContext> exec;
    std::unique_ptr<fhe::Bgv> bgv;
    std::shared_ptr<const fhe::GaloisKeys> keys;
    ListenSocket listen;
    std::thread thread;
  };

  void shard_main(ShardHost& host);
  void km_main();
  FrameChannel connect_shard(std::size_t i);

  const hhe::HheConfig& config_;
  const fhe::RnsContext& client_ctx_;
  ClusterConfig cluster_config_;

  std::unique_ptr<KeyManager> km_;
  ListenSocket km_listen_;
  std::thread km_accept_thread_;
  std::mutex km_mu_;
  std::vector<std::thread> km_conn_threads_;

  std::vector<std::unique_ptr<ShardHost>> shards_;
  std::unique_ptr<Router> router_;
};

}  // namespace poe::net
