#include "net/frame.hpp"

#include <string>

namespace poe::net {

bool known_msg_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MsgType::kPing) &&
         raw <= static_cast<std::uint16_t>(MsgType::kShutdown);
}

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kError: return "error";
    case MsgType::kOnboardKey: return "onboard_key";
    case MsgType::kOnboardAck: return "onboard_ack";
    case MsgType::kFetchKey: return "fetch_key";
    case MsgType::kKeyState: return "key_state";
    case MsgType::kInstallSession: return "install_session";
    case MsgType::kInstallAck: return "install_ack";
    case MsgType::kProcessBatch: return "process_batch";
    case MsgType::kProcessResult: return "process_result";
    case MsgType::kShutdown: return "shutdown";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload) {
  POE_ENSURE(payload.size() <= kMaxFramePayload,
             "frame payload exceeds kMaxFramePayload");
  WireWriter w;
  w.u32(kFrameMagic);
  w.u16(kFrameVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw WireError("truncated frame header: " + std::to_string(bytes.size()) +
                    " of " + std::to_string(kFrameHeaderBytes) + " bytes");
  }
  WireReader r(bytes.first(kFrameHeaderBytes));
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw WireError("bad frame magic");
  }
  FrameHeader h;
  h.version = r.u16();
  if (h.version != kFrameVersion) {
    throw WireError("unsupported frame version " + std::to_string(h.version));
  }
  const std::uint16_t raw_type = r.u16();
  if (!known_msg_type(raw_type)) {
    throw WireError("unknown frame type " + std::to_string(raw_type));
  }
  h.type = static_cast<MsgType>(raw_type);
  h.length = r.u32();
  // Bound the untrusted length BEFORE anyone allocates or reads a payload
  // sized from it.
  if (h.length > kMaxFramePayload) {
    throw WireError("frame payload length " + std::to_string(h.length) +
                    " exceeds the protocol bound");
  }
  h.crc = r.u32();
  return h;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  const FrameHeader h = parse_frame_header(bytes);
  const std::size_t total = kFrameHeaderBytes + h.length;
  if (bytes.size() < total) {
    throw WireError("truncated frame payload: header claims " +
                    std::to_string(h.length) + " bytes, buffer has " +
                    std::to_string(bytes.size() - kFrameHeaderBytes));
  }
  if (bytes.size() > total) {
    throw WireError("frame has " + std::to_string(bytes.size() - total) +
                    " trailing bytes past the declared payload");
  }
  Frame f;
  f.type = h.type;
  auto payload = bytes.subspan(kFrameHeaderBytes, h.length);
  if (crc32(payload) != h.crc) {
    throw WireError("frame payload CRC mismatch");
  }
  f.payload.assign(payload.begin(), payload.end());
  return f;
}

void FrameChannel::send(MsgType type, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame = encode_frame(type, payload);
  if (exec_ != nullptr && fault_forced(*exec_, "net.frame.torn")) {
    // Die mid-write: the peer reads a half frame, this endpoint is gone.
    sock_.send_all(std::span(frame).first(frame.size() / 2));
    sock_.shutdown_both();
    throw WireError("torn frame injected: connection wrecked mid-write");
  }
  sock_.send_all(frame);
}

std::optional<FrameChannel::Received> FrameChannel::recv() {
  Received out;
  std::uint8_t header[kFrameHeaderBytes];
  if (!sock_.recv_exact(header)) return std::nullopt;  // clean close
  // The slow-peer site is consulted once per frame that actually ARRIVED —
  // charging at blocking-read entry would bank virtual slowness against
  // whatever frame shows up next, possibly long after the chaos schedule
  // moved on.
  if (exec_ != nullptr) {
    out.stall_s = fault_stall_s(*exec_, "net.peer.stall");
  }
  const FrameHeader h = parse_frame_header(header);
  out.type = h.type;
  out.payload.resize(h.length);  // bounded by parse_frame_header
  if (h.length > 0 && !sock_.recv_exact(out.payload)) {
    throw WireError("torn frame: peer closed between header and payload");
  }
  if (crc32(out.payload) != h.crc) {
    throw WireError("frame payload CRC mismatch");
  }
  return out;
}

}  // namespace poe::net
