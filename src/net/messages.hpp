// Typed payload codecs for the frame protocol: what actually rides inside a
// frame of each MsgType. Every decode_* bounds-checks through WireReader and
// rejects trailing bytes, so a hostile payload lands as a WireError the
// serving loop turns into a typed response, never a crash.
//
// Ciphertext bytes (enc(K) uploads, result blocks) travel in the
// fhe/serialize.cpp wire form and are re-validated by the RECEIVER against
// its own RnsContext — the frame CRC catches transport damage, the
// ciphertext validation catches hostile structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "service/service.hpp"

namespace poe::net {

/// kOnboardKey: a client's one-time enc(K) upload to the key manager.
struct OnboardKeyMsg {
  std::uint64_t client_id = 0;
  std::vector<std::uint8_t> key_bytes;
};

/// kOnboardAck / kInstallAck: outcome of a state-changing request.
struct AckMsg {
  bool ok = false;
  std::string error;
};

/// kFetchKey: router asks the key manager for a client's validated enc(K).
struct FetchKeyMsg {
  std::uint64_t client_id = 0;
};

/// kKeyState: the key manager's answer.
struct KeyStateMsg {
  bool found = false;
  std::vector<std::uint8_t> key_bytes;
};

/// kProcessBatch: one wave of transcipher requests for one shard.
struct ProcessBatchMsg {
  std::vector<service::TranscipherRequest> requests;
};

/// One placed block of a result: tile + length into a shared batch-output
/// ciphertext, referenced by index into ProcessResultMsg::cts (blocks of
/// one batch share the ciphertext on the wire exactly as PlacedBlock shares
/// it in memory).
struct WireBlockRef {
  std::uint32_t ct_index = 0;
  std::uint32_t tile = 0;
  std::uint32_t len = 0;
};

/// One request's terminal outcome.
struct WireResult {
  std::uint64_t client_id = 0;
  std::uint64_t nonce = 0;
  service::RequestStatus status = service::RequestStatus::kOk;
  std::string error;
  std::vector<WireBlockRef> blocks;  ///< message order; empty unless kOk
};

/// The slice of a shard's ServiceReport the router needs for aggregate
/// accounting and the cross-process differential invariants.
struct ShardReportMsg {
  std::uint64_t requests = 0;
  std::uint64_t blocks = 0;
  std::uint64_t batches = 0;
  std::uint64_t cross_tenant_batches = 0;
  service::FaultStats faults;
};

/// kProcessResult: everything a shard returns for one kProcessBatch.
struct ProcessResultMsg {
  std::vector<std::vector<std::uint8_t>> cts;  ///< serialized batch outputs
  std::vector<WireResult> results;             ///< one per request, in order
  /// Key-less SessionState snapshots (serialize_session_state) of every
  /// session this wave touched — the piggyback that keeps the router's
  /// replay-window cache current, so a later rebalance restores every
  /// acknowledged nonce.
  std::vector<std::vector<std::uint8_t>> session_updates;
  ShardReportMsg report;
  /// Injected virtual peer slowness (net.peer.stall charged on the shard
  /// side), echoed so the router's timeout accounting runs on virtual time.
  double stall_s = 0;
};

std::vector<std::uint8_t> encode_onboard_key(const OnboardKeyMsg& m);
OnboardKeyMsg decode_onboard_key(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_ack(const AckMsg& m);
AckMsg decode_ack(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_fetch_key(const FetchKeyMsg& m);
FetchKeyMsg decode_fetch_key(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_key_state(const KeyStateMsg& m);
KeyStateMsg decode_key_state(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_process_batch(const ProcessBatchMsg& m);
ProcessBatchMsg decode_process_batch(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_process_result(const ProcessResultMsg& m);
ProcessResultMsg decode_process_result(std::span<const std::uint8_t> payload);

}  // namespace poe::net
