#include "net/socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace poe::net {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw WireError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}
}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw WireError("send on a dead channel");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that died turns into EPIPE here instead of
    // killing the process with SIGPIPE — the chaos harness depends on
    // every network fault surfacing as a typed error.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) {
  if (fd_ < 0) throw WireError("recv on a dead channel");
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close at a message boundary
      throw WireError("torn frame: peer closed after " + std::to_string(got) +
                      " of " + std::to_string(out.size()) + " bytes");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    port_ = o.port_;
  }
  return *this;
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

ListenSocket ListenSocket::loopback() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ListenSocket ls;
  ls.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind 127.0.0.1");
  }
  if (::listen(fd, 16) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  ls.port_ = ntohs(addr.sin_port);
  return ls;
}

ListenSocket ListenSocket::adopt(int fd) {
  ListenSocket ls;
  ls.fd_ = fd;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    ls.port_ = ntohs(addr.sin_port);
  }
  return ls;
}

Socket ListenSocket::accept() {
  if (fd_ < 0) throw WireError("accept on a closed listener");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void ListenSocket::abort() {
  // shutdown() on a listening socket wakes a blocked accept() with an
  // error (Linux semantics) without racing a concurrent close of the fd.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw_errno("connect 127.0.0.1");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace poe::net
