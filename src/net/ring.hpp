// Consistent-hash client -> shard routing. Each shard contributes `vnodes`
// points on a 64-bit hash circle; a client is owned by the first live
// shard point clockwise of its own hash. Deterministic (pure splitmix64,
// no process-local state), so the router, a bench parent picking balanced
// client ids, and a test can all predict placement — and when a shard dies
// only ITS clients move, which is exactly the property that makes
// rebalance-from-serialized-session-state cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace poe::net {

class HashRing {
 public:
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  std::size_t shards() const { return alive_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  bool alive(std::size_t shard) const { return alive_[shard]; }

  /// Owning LIVE shard of a client; throws poe::Error when every shard is
  /// dead.
  std::size_t owner(std::uint64_t client) const;

  void mark_dead(std::size_t shard);
  void revive(std::size_t shard);

 private:
  struct Point {
    std::uint64_t at = 0;
    std::uint32_t shard = 0;
  };
  std::vector<Point> points_;  ///< sorted by `at`
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
};

}  // namespace poe::net
