// Thin RAII layer over POSIX stream sockets — just enough transport for the
// framed protocol: loopback TCP (the in-process cluster harness and the
// multi-process bench both run router/shards/key-manager over 127.0.0.1)
// plus exact-count send/recv with typed errors. A peer closing mid-read
// surfaces as a WireError (a torn frame), not a short read the caller could
// misparse.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "net/wire.hpp"

namespace poe::net {

/// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes every byte or throws WireError.
  void send_all(std::span<const std::uint8_t> bytes);
  /// Reads exactly out.size() bytes. Returns false when the peer closed
  /// cleanly BEFORE the first byte (end of stream); throws WireError when
  /// the stream ends mid-buffer (torn) or on a socket error.
  bool recv_exact(std::span<std::uint8_t> out);

  /// Half-kill the connection without releasing the fd; the peer sees EOF.
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 on an ephemeral port (or adopted
/// from an inherited fd — how the multi-process bench hands a pre-bound
/// socket to a forked worker).
class ListenSocket {
 public:
  ListenSocket() = default;
  /// Bind + listen on 127.0.0.1:0; read the port back with port().
  static ListenSocket loopback();
  /// Adopt an already-listening fd (inherited across exec).
  static ListenSocket adopt(int fd);

  ListenSocket(ListenSocket&& o) noexcept
      : fd_(std::exchange(o.fd_, -1)), port_(o.port_) {}
  ListenSocket& operator=(ListenSocket&& o) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ~ListenSocket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Blocks for one connection; throws WireError if the listener was
  /// aborted (or on any socket error).
  Socket accept();

  /// Wake a blocked accept() from another thread (it throws WireError) —
  /// how the cluster harness stops a shard's accept loop.
  void abort();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port; throws WireError on failure.
Socket connect_loopback(std::uint16_t port);

}  // namespace poe::net
