// A small bounded MPMC queue — the coupling between the two stages of the
// transcipher service's pipeline (plaintext-side batch preparation feeding
// BGV evaluation). Blocking push/pop with a capacity bound provides
// backpressure: the prepare stage can run at most `capacity` batches ahead
// of the evaluator, bounding memory for encoded diagonal plaintexts.
//
// The queue counts its stalls (pushes that found it full, pops that found
// it empty) and the high-water depth, which the service surfaces in its
// ServiceReport — a full queue means evaluation is the bottleneck (prepare
// is fully hidden, the paper's Fig. 3 goal); an empty one means preparation
// is too slow to keep the evaluator busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"

namespace poe::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    POE_ENSURE(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Blocks while the queue is full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) ++push_stalls_;
    cv_not_full_.wait(lock,
                      [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    max_depth_ = std::max(max_depth_, items_.size());
    cv_not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    if (items_.empty() && !closed_) ++pop_stalls_;
    cv_not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    cv_not_full_.notify_one();
    return value;
  }

  /// No further pushes succeed; pops drain the remaining items.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    cv_not_full_.notify_all();
    cv_not_empty_.notify_all();
  }

  std::size_t push_stalls() const {
    std::lock_guard lock(mu_);
    return push_stalls_;
  }
  std::size_t pop_stalls() const {
    std::lock_guard lock(mu_);
    return pop_stalls_;
  }
  std::size_t max_depth() const {
    std::lock_guard lock(mu_);
    return max_depth_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_full_, cv_not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t push_stalls_ = 0;
  std::size_t pop_stalls_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace poe::service
