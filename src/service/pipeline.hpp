// A small bounded MPMC queue — the coupling between the two stages of the
// transcipher service's pipeline (plaintext-side batch preparation feeding
// BGV evaluation). Blocking push/pop with a capacity bound provides
// backpressure: the prepare stage can run at most `capacity` batches ahead
// of the evaluator, bounding memory for encoded diagonal plaintexts.
//
// Push results are typed (PushStatus) so the robustness layer can tell a
// shutdown apart from saturation: close() while a producer is blocked in
// push wakes it with kClosed (the shutdown-race regression test in
// service_test pins this), and push_for() gives the producer a bounded
// wait so a saturated queue degrades to load shedding (kTimedOut ->
// Overloaded) instead of blocking the pipeline indefinitely.
//
// The queue counts its stalls (pushes that found it full, pops that found
// it empty) and the high-water depth, which the service surfaces in its
// ServiceReport — a full queue means evaluation is the bottleneck (prepare
// is fully hidden, the paper's Fig. 3 goal); an empty one means preparation
// is too slow to keep the evaluator busy.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace poe::service {

/// Typed outcome of a queue push. kClosed is the shutdown signal (the queue
/// refused the value and never will accept one again); kTimedOut means the
/// bounded wait of push_for elapsed with the queue still saturated.
enum class PushStatus { kOk = 0, kClosed, kTimedOut };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    POE_ENSURE(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Blocks while the queue is full. Returns kClosed if the queue was (or
  /// becomes, while blocked) closed — close() wakes every blocked producer.
  PushStatus push(T value) {
    std::unique_lock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) ++push_stalls_;
    cv_not_full_.wait(lock,
                      [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return PushStatus::kClosed;
    enqueue_locked(std::move(value));
    return PushStatus::kOk;
  }

  /// Like push, but waits at most `timeout` for space: kTimedOut leaves the
  /// queue untouched, letting the caller shed the load instead of stalling.
  template <typename Rep, typename Period>
  PushStatus push_for(T value,
                      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) ++push_stalls_;
    const bool ready = cv_not_full_.wait_for(lock, timeout, [&] {
      return items_.size() < capacity_ || closed_;
    });
    if (closed_) return PushStatus::kClosed;
    if (!ready) return PushStatus::kTimedOut;
    enqueue_locked(std::move(value));
    return PushStatus::kOk;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    if (items_.empty() && !closed_) ++pop_stalls_;
    cv_not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    cv_not_full_.notify_one();
    return value;
  }

  /// No further pushes succeed; pops drain the remaining items. Producers
  /// blocked in push/push_for wake immediately with kClosed.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    cv_not_full_.notify_all();
    cv_not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t push_stalls() const {
    std::lock_guard lock(mu_);
    return push_stalls_;
  }
  std::size_t pop_stalls() const {
    std::lock_guard lock(mu_);
    return pop_stalls_;
  }
  std::size_t max_depth() const {
    std::lock_guard lock(mu_);
    return max_depth_;
  }

 private:
  void enqueue_locked(T value) {
    items_.push_back(std::move(value));
    max_depth_ = std::max(max_depth_, items_.size());
    cv_not_empty_.notify_one();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_full_, cv_not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t push_stalls_ = 0;
  std::size_t pop_stalls_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace poe::service
