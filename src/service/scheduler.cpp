#include "service/scheduler.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace poe::service {

const char* to_string(FlushCause cause) {
  switch (cause) {
    case FlushCause::kFull:
      return "full";
    case FlushCause::kDeadline:
      return "deadline";
    case FlushCause::kDrain:
      return "drain";
  }
  return "?";
}

BatchScheduler::BatchScheduler(const SchedulerConfig& config)
    : config_(config) {
  POE_ENSURE(config_.batch_capacity >= 1, "scheduler needs capacity >= 1");
  forming_.reserve(config_.batch_capacity);
}

bool BatchScheduler::can_accept(std::size_t blocks) const {
  return config_.max_pending_blocks == 0 ||
         pending_blocks() + blocks <= config_.max_pending_blocks;
}

bool BatchScheduler::submit(const ScheduledBlock& block, double now) {
  advance(now);
  if (!can_accept(1)) {
    ++stats_.shed;
    return false;
  }
  forming_.push_back(block);
  ++stats_.submitted;
  stats_.max_pending = std::max(stats_.max_pending, pending_blocks());
  if (forming_.size() == config_.batch_capacity) {
    flush(FlushCause::kFull, now);
  }
  return true;
}

void BatchScheduler::advance(double now) {
  // forming_ is in arrival order, so the front block is the oldest.
  if (config_.deadline_s > 0 && !forming_.empty() &&
      now - forming_.front().arrival_s >= config_.deadline_s) {
    flush(FlushCause::kDeadline, now);
  }
}

void BatchScheduler::drain(double now) {
  if (!forming_.empty()) flush(FlushCause::kDrain, now);
}

std::optional<FormedBatch> BatchScheduler::next() {
  if (ready_.empty()) return std::nullopt;
  FormedBatch out = std::move(ready_.front());
  ready_.pop_front();
  ready_blocks_ -= out.blocks.size();
  return out;
}

void BatchScheduler::flush(FlushCause cause, double now) {
  FormedBatch batch;
  batch.blocks = std::move(forming_);
  batch.cause = cause;
  batch.flushed_s = now;
  forming_.clear();
  forming_.reserve(config_.batch_capacity);

  ++stats_.batches;
  switch (cause) {
    case FlushCause::kFull:
      ++stats_.full_flushes;
      break;
    case FlushCause::kDeadline:
      ++stats_.deadline_flushes;
      break;
    case FlushCause::kDrain:
      ++stats_.drain_flushes;
      break;
  }
  stats_.occupancy_sum += static_cast<double>(batch.blocks.size()) /
                          static_cast<double>(config_.batch_capacity);
  std::unordered_set<std::uint64_t> tenants;
  for (const auto& block : batch.blocks) {
    tenants.insert(block.tenant);
    stats_.max_wait_s = std::max(stats_.max_wait_s, now - block.arrival_s);
  }
  if (tenants.size() > 1) ++stats_.cross_tenant_batches;

  ready_blocks_ += batch.blocks.size();
  ready_.push_back(std::move(batch));
}

}  // namespace poe::service
