// Multi-tenant transcipher service — the request-level serving layer on top
// of the SIMD batch engine (the software analogue of the paper's server).
//
// Responsibilities:
//  * Sessions. Each client uploads its BGV-encrypted PASTA key once
//    (encrypt_key_batched form); the service caches it with per-session
//    nonce replay tracking and evicts the least-recently-used session when
//    the capacity bound is hit.
//  * Coalescing. A request carries a whole message; the service splits it
//    into PASTA blocks (block i uses counter i, matching
//    pasta::PastaCipher::encrypt) and coalesces blocks of the SAME client
//    into SIMD batches of up to batch_capacity() tiles — blocks of
//    different clients use different keys, so they never share a batch.
//  * Pipelining. Batch preparation (SHAKE squeeze, rejection sampling,
//    matrix generation, diagonal encoding — pure CPU work) runs on a
//    dedicated thread feeding a bounded queue; the caller's thread drains
//    it with BGV evaluation. Preparation of batch N+1 overlaps evaluation
//    of batch N — Fig. 3's MatGen latency hiding in software.
//
// All rotation keys are built ONCE in the constructor and shared by every
// session (they depend only on the BGV key, not the PASTA key).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/exec_context.hpp"
#include "fhe/bgv.hpp"
#include "hhe/simd_batch.hpp"

namespace poe::service {

struct ServiceConfig {
  std::size_t max_sessions = 8;     ///< LRU-evict beyond this many clients
  std::size_t max_batch_blocks = 0; ///< 0 = the engine's full capacity
  std::size_t pipeline_depth = 2;   ///< prepared batches buffered ahead
  bool pipelined = true;            ///< false: prepare+evaluate in sequence
  std::size_t max_tracked_nonces = 1024;  ///< replay window per session
};

/// One client request: transcipher a whole PASTA-encrypted message.
struct TranscipherRequest {
  std::uint64_t client_id = 0;
  std::uint64_t nonce = 0;
  std::vector<std::uint64_t> symmetric_ct;
};

/// Where one block of a request's message landed: a tile of a (possibly
/// shared) batch output ciphertext.
struct PlacedBlock {
  std::shared_ptr<const fhe::Ciphertext> ct;
  std::size_t tile = 0;
  std::size_t len = 0;
};

struct TranscipherResult {
  std::uint64_t client_id = 0;
  std::uint64_t nonce = 0;
  std::vector<PlacedBlock> blocks;  ///< in message order
};

/// Aggregate diagnostics for one process() call.
struct ServiceReport {
  std::size_t requests = 0;
  std::size_t blocks = 0;
  std::size_t batches = 0;
  double total_s = 0;        ///< wall time of the whole call
  double prepare_s = 0;      ///< summed prepare-stage time
  double eval_s = 0;         ///< summed evaluate-stage time
  std::size_t prepare_stalls = 0;  ///< prepare blocked on a full queue
  std::size_t eval_stalls = 0;     ///< evaluator blocked on an empty queue
  std::size_t max_queue_depth = 0;
  double avg_batch_occupancy = 0;  ///< mean fill fraction of the batches
  double blocks_per_s = 0;
  double min_noise_budget_bits = 0;  ///< worst batch output
  std::size_t session_evictions = 0; ///< lifetime total at call end
  std::vector<double> request_latency_s;  ///< per request, call start -> done
  /// ExecContext counter delta over the whole call (NTTs, key switches, ...).
  CounterSnapshot exec_ops;
};

class TranscipherService {
 public:
  /// `shared_keys`: pass the rotation keys if several services share one
  /// BGV evaluator (they depend only on the BGV secret key); nullptr builds
  /// a fresh set.
  TranscipherService(const hhe::HheConfig& config, const fhe::Bgv& bgv,
                     ServiceConfig service_config = {},
                     std::shared_ptr<const fhe::GaloisKeys> shared_keys =
                         nullptr);

  /// Register (or replace) a client's encrypted PASTA key. Evicts the
  /// least-recently-used other session if the capacity bound is reached.
  void open_session(std::uint64_t client_id, fhe::Ciphertext key_ct);

  bool has_session(std::uint64_t client_id) const;
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t evictions() const { return evictions_; }

  /// Blocks per SIMD batch (bounded by ServiceConfig::max_batch_blocks).
  std::size_t batch_capacity() const { return max_batch_; }
  const hhe::SimdBatchEngine& engine() const { return engine_; }

  /// Transcipher a group of requests: coalesce into batches, run the
  /// two-stage pipeline, return one result per request (same order).
  /// Rejects requests for unknown sessions and replayed nonces.
  std::vector<TranscipherResult> process(
      std::span<const TranscipherRequest> requests,
      ServiceReport* report = nullptr);

  /// Client-side: decode one placed block with the secret key.
  static std::vector<std::uint64_t> decode_block(const hhe::HheConfig& config,
                                                 const fhe::Bgv& bgv,
                                                 const PlacedBlock& block);

 private:
  struct Session {
    fhe::Ciphertext key_ct;
    std::unordered_set<std::uint64_t> nonce_set;
    std::deque<std::uint64_t> nonce_order;  ///< bounded replay window
    std::list<std::uint64_t>::iterator lru_pos;
  };

  void touch(std::uint64_t client_id, Session& session);

  const hhe::HheConfig& config_;
  const fhe::Bgv& bgv_;
  ServiceConfig service_config_;
  hhe::SimdBatchEngine engine_;
  std::size_t max_batch_ = 0;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::size_t evictions_ = 0;
};

}  // namespace poe::service
