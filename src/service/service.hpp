// Multi-tenant transcipher service — the request-level serving layer on top
// of the SIMD batch engine (the software analogue of the paper's server).
//
// Responsibilities:
//  * Sessions. Each client uploads its BGV-encrypted PASTA key once
//    (encrypt_key_batched form); the service caches it with per-session
//    nonce replay tracking and evicts the least-recently-used session when
//    the capacity bound is hit. open_session_wire ingests the serialized
//    form, validating it before it can touch a batch.
//  * Cross-tenant packing. A request carries a whole message; the service
//    splits it into PASTA blocks (block i uses counter i, matching
//    pasta::PastaCipher::encrypt) and a deadline-aware BatchScheduler packs
//    blocks of DIFFERENT clients into one SIMD batch of up to
//    batch_capacity() tiles. Each tenant's tiled key is restricted to its
//    assigned tiles by a 0/1 mask and the masked keys are summed into one
//    packed key ciphertext (SimdBatchEngine::merge_tenant_keys); on output
//    each tenant receives a masked extraction carrying only its own slots.
//    Keys uploaded under a tenant's own BGV secret are key-switched into
//    the service's evaluation domain on ingest (open_session_switched).
//    ServiceConfig::cross_tenant_packing = false restores per-client
//    batching, kept as the reference path for differential tests.
//  * Pipelining. Batch preparation (SHAKE squeeze, rejection sampling,
//    matrix generation, diagonal encoding — pure CPU work) runs on a
//    dedicated thread feeding a bounded queue; the caller's thread drains
//    it with BGV evaluation. Preparation of batch N+1 overlaps evaluation
//    of batch N — Fig. 3's MatGen latency hiding in software.
//  * Robustness. HHE is exactly the setting where the server ingests
//    untrusted bytes from the edge, so hostile or corrupt input is the
//    normal case: per-request admission returns typed rejections instead
//    of throwing (unknown session, nonce replay, malformed or oversized
//    message, load shed); each pipeline stage runs under a virtual-time
//    timeout with bounded exponential-backoff retry; a saturated pipeline
//    queue degrades to a typed Overloaded rejection; and a decrypt-free
//    plausibility check (fhe::validate_ciphertext) quarantines poison-pill
//    session keys per batch instead of killing the whole process() call.
//    Every fault point is instrumented for the chaos harness
//    (tests/fault_test.cpp) via the FaultInjector on the evaluator's
//    ExecContext; unarmed, each point is one pointer load.
//
// All rotation keys are built ONCE in the constructor and shared by every
// session (they depend only on the BGV key, not the PASTA key).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/exec_context.hpp"
#include "fhe/bgv.hpp"
#include "hhe/simd_batch.hpp"
#include "service/scheduler.hpp"

namespace poe::service {

struct ServiceConfig {
  std::size_t max_sessions = 8;     ///< LRU-evict beyond this many clients
  std::size_t max_batch_blocks = 0; ///< 0 = the engine's full capacity
  std::size_t pipeline_depth = 2;   ///< prepared batches buffered ahead
  bool pipelined = true;            ///< false: prepare+evaluate in sequence
  std::size_t max_tracked_nonces = 1024;  ///< replay window per session

  /// Pack blocks of DIFFERENT clients into one SIMD batch (per-tenant slot
  /// ranges, merged keys, masked extraction on output). false restores
  /// per-client batching — the reference path for differential tests.
  bool cross_tenant_packing = true;
  /// Deadline-aware flush: a forming batch whose OLDEST block has waited
  /// longer than this is flushed partially full, bounding packing latency.
  /// 0 = flush only when full or at end-of-call drain. (Only meaningful
  /// with cross_tenant_packing; exercised under virtual time in
  /// tests/scheduler_test.cpp.)
  double batch_deadline_s = 0;

  // --- Robustness knobs (defaults keep the fault-free fast path intact).
  std::size_t max_request_elems = 1u << 16;  ///< admission bound per request
  /// Admission-level load shedding: blocks admitted per process() call
  /// beyond this are rejected kOverloaded. 0 = unbounded.
  std::size_t max_pending_blocks = 0;
  /// Attempts per pipeline stage per batch (1 = no retry).
  std::size_t max_stage_attempts = 3;
  /// A stage (prepare or evaluate of one batch) slower than this — real
  /// time plus any injected virtual stall — counts as a timeout and is
  /// retried; exhausted attempts degrade the batch to kTimedOut. 0 = off.
  double stage_timeout_s = 0;
  /// Exponential backoff before retry k sleeps backoff_base_s * 2^(k-1).
  double backoff_base_s = 0.0005;
  /// Bounded producer wait on a saturated pipeline queue; on expiry the
  /// batch is shed as kOverloaded. 0 = block indefinitely (no shedding).
  double queue_push_timeout_s = 0;
  /// Decrypt-free plausibility check of the session key before each batch
  /// evaluation; failures quarantine the batch (kQuarantined).
  bool validate_sessions = true;
};

/// One client request: transcipher a whole PASTA-encrypted message.
struct TranscipherRequest {
  std::uint64_t client_id = 0;
  std::uint64_t nonce = 0;
  std::vector<std::uint64_t> symmetric_ct;
};

/// Everything a session must carry across a process boundary: the encrypted
/// PASTA key (serialized enc(K) wire bytes), the nonce replay window and the
/// serving stats. This is what a shard snapshot/restore and the router's
/// rebalance-to-a-survivor move around; serialize_session_state gives it a
/// versioned wire form. A state exported mid-batch is legitimate and safe:
/// nonces are recorded at admission, so a snapshot taken before the batch
/// finished carries the nonce with zero served blocks — restoring it keeps
/// the replay rejection and simply loses the in-flight work.
struct SessionState {
  std::uint64_t client_id = 0;
  bool has_key = false;               ///< false: nonce-window/stats update only
  std::vector<std::uint8_t> key_bytes;  ///< serialize_ciphertext(enc(K))
  std::vector<std::uint64_t> nonces;    ///< replay window, oldest first
  std::uint64_t requests_served = 0;    ///< kOk requests over the session
  std::uint64_t blocks_served = 0;      ///< blocks delivered to the client
};

/// Versioned wire form ("SES1" magic + u16 version). Deserialization
/// bounds-checks every length field before allocating and throws poe::Error
/// on damage — same hardening discipline as fhe/serialize.cpp.
std::vector<std::uint8_t> serialize_session_state(const SessionState& state);
SessionState deserialize_session_state(std::span<const std::uint8_t> bytes);

/// Where one block of a request's message landed: a tile of a (possibly
/// shared) batch output ciphertext.
struct PlacedBlock {
  std::shared_ptr<const fhe::Ciphertext> ct;
  std::size_t tile = 0;
  std::size_t len = 0;
};

/// Typed terminal state of one request. Everything except kOk is a
/// degradation the caller can act on; process() itself no longer throws on
/// hostile input — a poison-pill request must not kill its batchmates.
enum class RequestStatus {
  kOk = 0,
  kUnknownSession,   ///< no session for client_id
  kNonceReplay,      ///< nonce inside the session's replay window
  kInvalidRequest,   ///< empty or oversized message
  kOverloaded,       ///< load shed (admission bound or saturated queue)
  kQuarantined,      ///< session key failed the plausibility check
  kTimedOut,         ///< stage timeout persisted through every retry
  kFailed,           ///< stage error persisted through every retry
};

const char* to_string(RequestStatus s);

struct TranscipherResult {
  std::uint64_t client_id = 0;
  std::uint64_t nonce = 0;
  RequestStatus status = RequestStatus::kOk;
  std::string error;                ///< detail for status != kOk
  std::vector<PlacedBlock> blocks;  ///< in message order; empty unless kOk

  bool ok() const { return status == RequestStatus::kOk; }
};

/// Per-fault-class accounting for one process() call. The terminal-status
/// counters partition the call's requests:
///   requests == ok + rejected + shed + quarantined + timed_out + failed.
struct FaultStats {
  std::size_t ok = 0;
  std::size_t rejected = 0;     ///< unknown session / replay / invalid
  std::size_t shed = 0;         ///< kOverloaded
  std::size_t quarantined = 0;  ///< kQuarantined
  std::size_t timed_out = 0;    ///< kTimedOut
  std::size_t failed = 0;       ///< kFailed
  std::size_t retries = 0;      ///< stage attempts beyond the first
  std::size_t stage_timeouts = 0;  ///< stage runs that exceeded the timeout
  std::size_t recovered_batches = 0;  ///< batches that succeeded on a retry
  std::size_t injected = 0;     ///< FaultInjector fires during the call
};

/// Aggregate diagnostics for one process() call.
struct ServiceReport {
  std::size_t requests = 0;
  std::size_t blocks = 0;
  std::size_t batches = 0;
  double total_s = 0;        ///< wall time of the whole call
  double prepare_s = 0;      ///< summed prepare-stage time
  double eval_s = 0;         ///< summed evaluate-stage time
  std::size_t prepare_stalls = 0;  ///< prepare blocked on a full queue
  std::size_t eval_stalls = 0;     ///< evaluator blocked on an empty queue
  std::size_t max_queue_depth = 0;
  double avg_batch_occupancy = 0;  ///< mean fill fraction of the batches
  double blocks_per_s = 0;
  // --- Batch-scheduler accounting (all zero with cross_tenant_packing
  // --- off): why each batch left the forming stage, and the packing reach.
  std::size_t full_flushes = 0;      ///< batches flushed at capacity
  std::size_t deadline_flushes = 0;  ///< partial batches flushed on deadline
  std::size_t drain_flushes = 0;     ///< partial batches flushed at drain
  std::size_t cross_tenant_batches = 0;  ///< batches packing >1 tenant
  double max_batch_wait_s = 0;  ///< worst block arrival -> flush wait
  double min_noise_budget_bits = 0;  ///< worst batch output
  /// Budget implied by the server-side tracked bound for the same worst
  /// deliverable — computable without the secret key. Soundness invariant
  /// (CI-enforced): predicted <= measured.
  double predicted_min_budget_bits = 0;
  std::size_t session_evictions = 0; ///< lifetime total at call end
  std::vector<double> request_latency_s;  ///< per request, call start -> done
  FaultStats faults;         ///< robustness-layer accounting
  /// ExecContext counter delta over the whole call (NTTs, key switches, ...).
  CounterSnapshot exec_ops;
  /// Kernel backend the evaluation ran on ("scalar", "avx2", "avx512") —
  /// from the ExecContext's dispatch decision, for bench provenance.
  std::string kernel_backend;
};

class TranscipherService {
 public:
  /// `shared_keys`: pass the rotation keys if several services share one
  /// BGV evaluator (they depend only on the BGV secret key); nullptr builds
  /// a fresh set.
  TranscipherService(const hhe::HheConfig& config, const fhe::Bgv& bgv,
                     ServiceConfig service_config = {},
                     std::shared_ptr<const fhe::GaloisKeys> shared_keys =
                         nullptr);

  /// Register (or replace) a client's encrypted PASTA key. Evicts the
  /// least-recently-used other session if the capacity bound is reached.
  void open_session(std::uint64_t client_id, fhe::Ciphertext key_ct);

  /// Ingest a key that was encrypted under the TENANT's own BGV secret:
  /// key-switch it into this service's evaluation domain
  /// (fhe::Bgv::ingest_switch) and register the switched key. Obtain
  /// `ingest_key` from bgv.make_ingest_key(tenant_bgv). This is how tenants
  /// with independent key material share one packed evaluation domain.
  void open_session_switched(std::uint64_t client_id,
                             const fhe::Ciphertext& tenant_key_ct,
                             const fhe::KswKey& ingest_key);

  /// Wire ingest: deserialize + validate an untrusted key upload before it
  /// can reach a session. Returns false (with `error` describing why)
  /// on truncated, corrupt, or structurally implausible bytes — never
  /// throws, never partially registers a session.
  bool open_session_wire(std::uint64_t client_id,
                         std::span<const std::uint8_t> bytes,
                         std::string* error = nullptr);

  bool has_session(std::uint64_t client_id) const;
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t evictions() const { return evictions_; }

  /// Blocks per SIMD batch (bounded by ServiceConfig::max_batch_blocks).
  std::size_t batch_capacity() const { return max_batch_; }
  const hhe::SimdBatchEngine& engine() const { return engine_; }

  /// Transcipher a group of requests: coalesce into batches, run the
  /// two-stage pipeline, return one result per request (same order). Every
  /// per-request problem — unknown session, replayed nonce, malformed
  /// message, shed load, poisoned key, exhausted retries — lands as a typed
  /// status on that request's result; healthy requests are unaffected.
  std::vector<TranscipherResult> process(
      std::span<const TranscipherRequest> requests,
      ServiceReport* report = nullptr);

  /// Client-side: decode one placed block with the secret key.
  static std::vector<std::uint64_t> decode_block(const hhe::HheConfig& config,
                                                 const fhe::Bgv& bgv,
                                                 const PlacedBlock& block);

  // --- Session-state snapshot/restore (shard restart and rebalance). ------

  /// Snapshot a session (throws poe::Error when the client is unknown).
  /// `include_key` = false produces a nonce-window/stats update — what a
  /// shard piggybacks on its responses so a router can rebuild the session
  /// elsewhere without ever holding enc(K) itself.
  SessionState export_session(std::uint64_t client_id,
                              bool include_key) const;

  /// Install or update a session from a snapshot. A state carrying a key is
  /// validated through the same wire path as open_session_wire (deserialize
  /// + plausibility check); a key-less state requires the session to exist.
  /// Nonce windows MERGE (set union, oldest first, clipped to the tracked
  /// bound) and stats take the maximum — restoring a stale snapshot can
  /// only widen replay protection, never re-admit an accepted nonce.
  /// Returns false with `error` set on invalid input; never throws, never
  /// partially applies.
  bool import_session(const SessionState& state, std::string* error = nullptr);

 private:
  struct Session {
    fhe::Ciphertext key_ct;
    std::unordered_set<std::uint64_t> nonce_set;
    std::deque<std::uint64_t> nonce_order;  ///< bounded replay window
    std::list<std::uint64_t>::iterator lru_pos;
    std::uint64_t requests_served = 0;  ///< kOk requests (scheduler stats)
    std::uint64_t blocks_served = 0;
  };

  void touch(std::uint64_t client_id, Session& session);

  const hhe::HheConfig& config_;
  const fhe::Bgv& bgv_;
  ServiceConfig service_config_;
  hhe::SimdBatchEngine engine_;
  std::size_t max_batch_ = 0;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::size_t evictions_ = 0;
};

}  // namespace poe::service
