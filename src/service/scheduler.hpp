// Deadline-aware cross-tenant batch formation.
//
// The scheduler owns the ADMISSION geometry of packed transciphering: it
// assigns incoming blocks (from any tenant) to SIMD tiles of a forming
// batch, flushes the batch when it fills, when the oldest block's latency
// deadline expires, or when the caller drains, and refuses work when the
// total pending backlog would exceed the configured bound (the service maps
// that refusal to RequestStatus::kOverloaded).
//
// It is deliberately free of ciphertext state: blocks are opaque
// (tenant, handle) pairs, the service keeps the payloads in a side array
// indexed by handle. Time is VIRTUAL — every entry point takes `now` in
// seconds from an arbitrary epoch — so deadline behaviour is exactly
// testable without sleeping (tests/scheduler_test.cpp) and the service can
// feed it wall-clock offsets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace poe::service {

struct SchedulerConfig {
  /// Tiles per batch (SimdBatchEngine::capacity()).
  std::size_t batch_capacity = 1;
  /// Flush a partial batch once its oldest block has waited this long.
  /// 0 disables deadline flushes (flush only on full / drain).
  double deadline_s = 0;
  /// Backlog bound across forming + formed-but-unconsumed blocks;
  /// 0 = unbounded. Saturation is reported via can_accept/submit.
  std::size_t max_pending_blocks = 0;
};

/// Why a batch left the forming stage.
enum class FlushCause : std::uint8_t { kFull = 0, kDeadline, kDrain };
const char* to_string(FlushCause cause);

/// One tile of a forming batch. `handle` is caller-defined (the service
/// uses an index into its pending-block array).
struct ScheduledBlock {
  std::uint64_t tenant = 0;
  std::size_t handle = 0;
  double arrival_s = 0;
};

/// A flushed batch, tiles in arrival order (tile i = blocks[i]).
struct FormedBatch {
  std::vector<ScheduledBlock> blocks;
  FlushCause cause = FlushCause::kFull;
  double flushed_s = 0;
};

struct SchedulerStats {
  std::size_t submitted = 0;  ///< blocks accepted
  std::size_t shed = 0;       ///< blocks refused at saturation
  std::size_t batches = 0;    ///< batches flushed
  std::size_t full_flushes = 0;
  std::size_t deadline_flushes = 0;
  std::size_t drain_flushes = 0;
  std::size_t cross_tenant_batches = 0;  ///< batches packing >1 tenant
  std::size_t max_pending = 0;           ///< peak backlog in blocks
  double occupancy_sum = 0;  ///< sum over batches of blocks/capacity
  double max_wait_s = 0;     ///< worst block arrival -> flush wait
};

class BatchScheduler {
 public:
  explicit BatchScheduler(const SchedulerConfig& config);

  /// Would `blocks` more fit under max_pending_blocks right now? Callers
  /// admitting a multi-block request all-or-nothing check this before
  /// recording any per-request state (e.g. nonces stay replayable after a
  /// shed).
  bool can_accept(std::size_t blocks) const;

  /// Accept one block (false = shed at saturation). Flushes the forming
  /// batch first if the deadline expired, and after the append if it filled.
  bool submit(const ScheduledBlock& block, double now);

  /// Advance virtual time only: flush the forming batch iff its oldest
  /// block's deadline has expired.
  void advance(double now);

  /// End-of-stream: flush whatever is still forming.
  void drain(double now);

  /// Pop the next formed batch (FIFO), if any.
  std::optional<FormedBatch> next();

  /// Backlog: forming + formed-but-unpopped blocks.
  std::size_t pending_blocks() const {
    return forming_.size() + ready_blocks_;
  }
  const SchedulerStats& stats() const { return stats_; }
  const SchedulerConfig& config() const { return config_; }

 private:
  void flush(FlushCause cause, double now);

  SchedulerConfig config_;
  std::vector<ScheduledBlock> forming_;
  std::deque<FormedBatch> ready_;
  std::size_t ready_blocks_ = 0;
  SchedulerStats stats_;
};

}  // namespace poe::service
