#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "service/pipeline.hpp"

namespace poe::service {

namespace {
using Clock = std::chrono::steady_clock;
using u64 = std::uint64_t;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

TranscipherService::TranscipherService(
    const hhe::HheConfig& config, const fhe::Bgv& bgv,
    ServiceConfig service_config,
    std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      service_config_(service_config),
      engine_(config, bgv,
              shared_keys != nullptr
                  ? std::move(shared_keys)
                  : hhe::SimdBatchEngine::make_shared_rotation_keys(config,
                                                                    bgv)) {
  POE_ENSURE(service_config_.max_sessions >= 1, "need at least one session");
  POE_ENSURE(service_config_.pipeline_depth >= 1,
             "pipeline depth must be >= 1");
  max_batch_ = engine_.capacity();
  if (service_config_.max_batch_blocks != 0) {
    max_batch_ = std::min(max_batch_, service_config_.max_batch_blocks);
  }
}

void TranscipherService::open_session(u64 client_id, fhe::Ciphertext key_ct) {
  auto it = sessions_.find(client_id);
  if (it != sessions_.end()) {
    // Fresh key for a known client: keep the nonce replay history.
    it->second.key_ct = std::move(key_ct);
    touch(client_id, it->second);
    return;
  }
  if (sessions_.size() >= service_config_.max_sessions) {
    const u64 victim = lru_.back();
    lru_.pop_back();
    sessions_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(client_id);
  Session session;
  session.key_ct = std::move(key_ct);
  session.lru_pos = lru_.begin();
  sessions_.emplace(client_id, std::move(session));
}

bool TranscipherService::has_session(u64 client_id) const {
  return sessions_.contains(client_id);
}

void TranscipherService::touch(u64 /*client_id*/, Session& session) {
  lru_.splice(lru_.begin(), lru_, session.lru_pos);
}

std::vector<TranscipherResult> TranscipherService::process(
    std::span<const TranscipherRequest> requests, ServiceReport* report) {
  const auto t_start = Clock::now();
  ServiceReport local;
  ServiceReport& rep = report != nullptr ? *report : local;
  rep = ServiceReport{};
  const CounterSnapshot before = bgv_.rns().exec().snapshot();
  const std::size_t t = config_.pasta.t;

  std::vector<TranscipherResult> results(requests.size());
  rep.request_latency_s.assign(requests.size(), 0);
  if (requests.empty()) {
    rep.session_evictions = evictions_;
    return results;
  }

  // ---- Admission: session lookup, nonce replay, block splitting. --------
  struct BlockRef {
    std::size_t request = 0;
    std::size_t block = 0;
  };
  struct BatchJob {
    u64 client_id = 0;
    std::vector<hhe::SimdBlockRequest> blocks;
    std::vector<BlockRef> refs;
  };
  std::vector<BatchJob> jobs;
  // Per client: the job that still has free tiles (coalescing point).
  std::unordered_map<u64, std::size_t> open_job;

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto& req = requests[r];
    auto it = sessions_.find(req.client_id);
    POE_ENSURE(it != sessions_.end(),
               "no session for client " << req.client_id);
    Session& session = it->second;
    POE_ENSURE(!session.nonce_set.contains(req.nonce),
               "nonce replay for client " << req.client_id << ": "
                                          << req.nonce);
    POE_ENSURE(!req.symmetric_ct.empty(), "empty request");
    session.nonce_set.insert(req.nonce);
    session.nonce_order.push_back(req.nonce);
    if (session.nonce_order.size() > service_config_.max_tracked_nonces) {
      session.nonce_set.erase(session.nonce_order.front());
      session.nonce_order.pop_front();
    }
    touch(req.client_id, session);

    results[r].client_id = req.client_id;
    results[r].nonce = req.nonce;
    const std::size_t nblocks = (req.symmetric_ct.size() + t - 1) / t;
    results[r].blocks.resize(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t begin = b * t;
      const std::size_t len = std::min(t, req.symmetric_ct.size() - begin);
      auto open = open_job.find(req.client_id);
      if (open == open_job.end() ||
          jobs[open->second].blocks.size() >= max_batch_) {
        open_job[req.client_id] = jobs.size();
        BatchJob job;
        job.client_id = req.client_id;
        jobs.push_back(std::move(job));
        open = open_job.find(req.client_id);
      }
      BatchJob& job = jobs[open->second];
      hhe::SimdBlockRequest block;
      block.nonce = req.nonce;
      block.counter = b;  // block i of a message uses counter i
      block.symmetric_ct.assign(
          req.symmetric_ct.begin() + static_cast<long>(begin),
          req.symmetric_ct.begin() + static_cast<long>(begin + len));
      job.blocks.push_back(std::move(block));
      job.refs.push_back(BlockRef{.request = r, .block = b});
      ++rep.blocks;
    }
  }
  rep.requests = requests.size();
  rep.batches = jobs.size();

  // ---- Two-stage pipeline: prepare (CPU) -> evaluate (BGV). -------------
  struct Prepared {
    std::size_t job = 0;
    hhe::PreparedSimdBatch batch;
    double prepare_s = 0;
  };

  std::vector<std::size_t> missing(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    missing[r] = results[r].blocks.size();
  }
  rep.min_noise_budget_bits = 1e9;

  auto evaluate_one = [&](Prepared prepared) {
    const BatchJob& job = jobs[prepared.job];
    const auto t0 = Clock::now();
    hhe::ServerReport server_report;
    auto ct = std::make_shared<const fhe::Ciphertext>(engine_.evaluate(
        sessions_.at(job.client_id).key_ct, prepared.batch, &server_report));
    rep.eval_s += seconds_since(t0);
    rep.prepare_s += prepared.prepare_s;
    rep.min_noise_budget_bits = std::min(rep.min_noise_budget_bits,
                                         server_report.min_noise_budget_bits);
    for (std::size_t i = 0; i < job.refs.size(); ++i) {
      const BlockRef& ref = job.refs[i];
      results[ref.request].blocks[ref.block] =
          PlacedBlock{ct, i, prepared.batch.lens[i]};
      if (--missing[ref.request] == 0) {
        rep.request_latency_s[ref.request] = seconds_since(t_start);
      }
    }
  };

  auto prepare_one = [&](std::size_t j) {
    const auto t0 = Clock::now();
    Prepared prepared;
    prepared.job = j;
    prepared.batch = engine_.prepare(jobs[j].blocks);
    prepared.prepare_s = seconds_since(t0);
    return prepared;
  };

  if (service_config_.pipelined) {
    BoundedQueue<Prepared> queue(service_config_.pipeline_depth);
    std::exception_ptr prepare_error;
    std::thread producer([&] {
      try {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          if (!queue.push(prepare_one(j))) break;
        }
      } catch (...) {
        prepare_error = std::current_exception();
      }
      queue.close();
    });
    try {
      while (auto prepared = queue.pop()) evaluate_one(std::move(*prepared));
    } catch (...) {
      queue.close();  // unblock the producer before re-throwing
      producer.join();
      throw;
    }
    producer.join();
    if (prepare_error) std::rethrow_exception(prepare_error);
    rep.prepare_stalls = queue.push_stalls();
    rep.eval_stalls = queue.pop_stalls();
    rep.max_queue_depth = queue.max_depth();
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      evaluate_one(prepare_one(j));
    }
  }

  rep.total_s = seconds_since(t_start);
  rep.avg_batch_occupancy = 0;
  for (const auto& job : jobs) {
    rep.avg_batch_occupancy +=
        double(job.blocks.size()) / double(max_batch_);
  }
  rep.avg_batch_occupancy /= double(jobs.size());
  rep.blocks_per_s = rep.total_s > 0 ? double(rep.blocks) / rep.total_s : 0;
  rep.session_evictions = evictions_;
  rep.exec_ops = bgv_.rns().exec().snapshot() - before;
  return results;
}

std::vector<u64> TranscipherService::decode_block(const hhe::HheConfig& config,
                                                  const fhe::Bgv& bgv,
                                                  const PlacedBlock& block) {
  POE_ENSURE(block.ct != nullptr, "block was never evaluated");
  return hhe::SimdBatchEngine::decode_block(config, bgv, *block.ct,
                                            block.tile, block.len);
}

}  // namespace poe::service
