#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "fhe/serialize.hpp"
#include "service/pipeline.hpp"

namespace poe::service {

namespace {
using Clock = std::chrono::steady_clock;
using u64 = std::uint64_t;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

namespace {
// Local little-endian helpers for the session-state wire form (the service
// must not depend on src/net/, which sits above it).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

struct StateReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes.size() - pos; }
  std::span<const std::uint8_t> need(std::size_t n) {
    POE_ENSURE(n <= remaining(), "truncated session state: need "
                                     << n << " bytes, have " << remaining());
    auto view = bytes.subspan(pos, n);
    pos += n;
    return view;
  }
  std::uint16_t u16() {
    auto b = need(2);
    return static_cast<std::uint16_t>(b[0] | (std::uint16_t{b[1]} << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
};

constexpr std::uint32_t kSessionMagic = 0x31534553;  // "SES1"
constexpr std::uint16_t kSessionVersion = 1;
}  // namespace

std::vector<std::uint8_t> serialize_session_state(const SessionState& state) {
  std::vector<std::uint8_t> out;
  put_u32(out, kSessionMagic);
  put_u16(out, kSessionVersion);
  put_u16(out, state.has_key ? 1 : 0);
  put_u64(out, state.client_id);
  put_u64(out, state.requests_served);
  put_u64(out, state.blocks_served);
  POE_ENSURE(state.nonces.size() <= UINT32_MAX, "nonce window too large");
  put_u32(out, static_cast<std::uint32_t>(state.nonces.size()));
  for (const u64 nonce : state.nonces) put_u64(out, nonce);
  if (state.has_key) {
    POE_ENSURE(state.key_bytes.size() <= UINT32_MAX, "key bytes too large");
    put_u32(out, static_cast<std::uint32_t>(state.key_bytes.size()));
    out.insert(out.end(), state.key_bytes.begin(), state.key_bytes.end());
  }
  return out;
}

SessionState deserialize_session_state(std::span<const std::uint8_t> bytes) {
  StateReader r{bytes};
  POE_ENSURE(r.u32() == kSessionMagic, "bad session-state magic");
  const std::uint16_t version = r.u16();
  POE_ENSURE(version == kSessionVersion,
             "unsupported session-state version " << version);
  const std::uint16_t flags = r.u16();
  POE_ENSURE((flags & ~1u) == 0, "unknown session-state flags");
  SessionState state;
  state.has_key = (flags & 1u) != 0;
  state.client_id = r.u64();
  state.requests_served = r.u64();
  state.blocks_served = r.u64();
  const std::uint32_t nonce_count = r.u32();
  // Bound the untrusted count by the bytes actually present before it can
  // size an allocation.
  POE_ENSURE(std::uint64_t{nonce_count} * 8 <= r.remaining(),
             "nonce count " << nonce_count << " exceeds the remaining "
                            << r.remaining() << " bytes");
  state.nonces.reserve(nonce_count);
  for (std::uint32_t i = 0; i < nonce_count; ++i) {
    state.nonces.push_back(r.u64());
  }
  if (state.has_key) {
    const std::uint32_t key_len = r.u32();
    POE_ENSURE(key_len <= r.remaining(),
               "key length " << key_len << " exceeds the remaining "
                             << r.remaining() << " bytes");
    auto view = r.need(key_len);
    state.key_bytes.assign(view.begin(), view.end());
  }
  POE_ENSURE(r.remaining() == 0, "session state has "
                                     << r.remaining()
                                     << " undeclared trailing bytes");
  return state;
}

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kUnknownSession: return "unknown_session";
    case RequestStatus::kNonceReplay: return "nonce_replay";
    case RequestStatus::kInvalidRequest: return "invalid_request";
    case RequestStatus::kOverloaded: return "overloaded";
    case RequestStatus::kQuarantined: return "quarantined";
    case RequestStatus::kTimedOut: return "timed_out";
    case RequestStatus::kFailed: return "failed";
  }
  return "?";
}

TranscipherService::TranscipherService(
    const hhe::HheConfig& config, const fhe::Bgv& bgv,
    ServiceConfig service_config,
    std::shared_ptr<const fhe::GaloisKeys> shared_keys)
    : config_(config),
      bgv_(bgv),
      service_config_(service_config),
      engine_(config, bgv,
              shared_keys != nullptr
                  ? std::move(shared_keys)
                  : hhe::SimdBatchEngine::make_shared_rotation_keys(config,
                                                                    bgv)) {
  POE_ENSURE(service_config_.max_sessions >= 1, "need at least one session");
  POE_ENSURE(service_config_.pipeline_depth >= 1,
             "pipeline depth must be >= 1");
  POE_ENSURE(service_config_.max_stage_attempts >= 1,
             "need at least one stage attempt");
  max_batch_ = engine_.capacity();
  if (service_config_.max_batch_blocks != 0) {
    max_batch_ = std::min(max_batch_, service_config_.max_batch_blocks);
  }
}

void TranscipherService::open_session(u64 client_id, fhe::Ciphertext key_ct) {
  auto it = sessions_.find(client_id);
  if (it != sessions_.end()) {
    // Fresh key for a known client: keep the nonce replay history.
    it->second.key_ct = std::move(key_ct);
    touch(client_id, it->second);
    return;
  }
  if (sessions_.size() >= service_config_.max_sessions) {
    const u64 victim = lru_.back();
    lru_.pop_back();
    sessions_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(client_id);
  Session session;
  session.key_ct = std::move(key_ct);
  session.lru_pos = lru_.begin();
  sessions_.emplace(client_id, std::move(session));
}

void TranscipherService::open_session_switched(
    u64 client_id, const fhe::Ciphertext& tenant_key_ct,
    const fhe::KswKey& ingest_key) {
  open_session(client_id, bgv_.ingest_switch(tenant_key_ct, ingest_key));
}

bool TranscipherService::open_session_wire(u64 client_id,
                                           std::span<const std::uint8_t> bytes,
                                           std::string* error) {
  // The chaos harness models a lossy/hostile uplink by truncating the
  // upload here; organically short buffers take the same rejection path.
  if (fault_forced(bgv_.rns().exec(), "service.wire.truncate")) {
    bytes = bytes.first(bytes.size() / 2);
  }
  try {
    fhe::Ciphertext ct = fhe::deserialize_ciphertext(bgv_.rns(), bytes);
    if (auto why = fhe::validate_ciphertext(bgv_.rns(), ct)) {
      if (error != nullptr) *error = "implausible key upload: " + *why;
      return false;
    }
    open_session(client_id, std::move(ct));
    return true;
  } catch (const poe::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

bool TranscipherService::has_session(u64 client_id) const {
  return sessions_.contains(client_id);
}

SessionState TranscipherService::export_session(u64 client_id,
                                                bool include_key) const {
  auto it = sessions_.find(client_id);
  POE_ENSURE(it != sessions_.end(),
             "export_session: no session for client " << client_id);
  const Session& session = it->second;
  SessionState state;
  state.client_id = client_id;
  state.nonces.assign(session.nonce_order.begin(), session.nonce_order.end());
  state.requests_served = session.requests_served;
  state.blocks_served = session.blocks_served;
  if (include_key) {
    state.has_key = true;
    state.key_bytes = fhe::serialize_ciphertext(bgv_.rns(), session.key_ct);
  }
  return state;
}

bool TranscipherService::import_session(const SessionState& state,
                                        std::string* error) {
  auto it = sessions_.find(state.client_id);
  if (it == sessions_.end()) {
    if (!state.has_key) {
      if (error != nullptr) {
        *error = "session state carries no key and no session exists";
      }
      return false;
    }
    // Same untrusted-bytes gate as open_session_wire: deserialize +
    // plausibility-validate before the key can touch a batch.
    if (!open_session_wire(state.client_id, state.key_bytes, error)) {
      return false;
    }
    it = sessions_.find(state.client_id);
  } else if (state.has_key) {
    if (!open_session_wire(state.client_id, state.key_bytes, error)) {
      return false;
    }
  }
  Session& session = it->second;
  // Merge the nonce windows (union, incoming appended in order): a restore
  // can only widen the replay window, never re-admit an accepted nonce.
  for (const u64 nonce : state.nonces) {
    if (session.nonce_set.insert(nonce).second) {
      session.nonce_order.push_back(nonce);
    }
  }
  while (session.nonce_order.size() > service_config_.max_tracked_nonces) {
    session.nonce_set.erase(session.nonce_order.front());
    session.nonce_order.pop_front();
  }
  session.requests_served =
      std::max(session.requests_served, state.requests_served);
  session.blocks_served = std::max(session.blocks_served, state.blocks_served);
  return true;
}

void TranscipherService::touch(u64 /*client_id*/, Session& session) {
  lru_.splice(lru_.begin(), lru_, session.lru_pos);
}

std::vector<TranscipherResult> TranscipherService::process(
    std::span<const TranscipherRequest> requests, ServiceReport* report) {
  const auto t_start = Clock::now();
  ServiceReport local;
  ServiceReport& rep = report != nullptr ? *report : local;
  rep = ServiceReport{};
  ExecContext& exec = bgv_.rns().exec();
  const CounterSnapshot before = exec.snapshot();
  FaultInjector* injector = exec.fault_injector();
  const u64 fired_before = injector != nullptr ? injector->fired_total() : 0;
  const std::size_t t = config_.pasta.t;

  std::vector<TranscipherResult> results(requests.size());
  rep.request_latency_s.assign(requests.size(), 0);
  rep.requests = requests.size();
  if (requests.empty()) {
    rep.session_evictions = evictions_;
    return results;
  }

  // ---- Admission: session lookup, nonce replay, request sanity, load
  // ---- shedding, block splitting. Rejections are typed per request —
  // ---- hostile input degrades that request, never the batch.
  struct BlockRef {
    std::size_t request = 0;
    std::size_t block = 0;
  };
  struct BatchJob {
    u64 client_id = 0;  ///< legacy per-client path only
    std::vector<hhe::SimdBlockRequest> blocks;
    std::vector<BlockRef> refs;
    std::vector<u64> tenants;  ///< tile -> owning client (packed path)
  };
  std::vector<BatchJob> jobs;
  const bool packing = service_config_.cross_tenant_packing;

  // Packed path: the deadline-aware scheduler owns batch formation (tile
  // assignment, flush causes, backlog bound); payloads wait in a side
  // array indexed by the scheduler handle. Time is the offset from call
  // start, so the scheduler's virtual clock lines up with request_latency_s.
  BatchScheduler scheduler(SchedulerConfig{
      .batch_capacity = max_batch_,
      .deadline_s = service_config_.batch_deadline_s,
      .max_pending_blocks = service_config_.max_pending_blocks});
  struct PendingBlock {
    hhe::SimdBlockRequest block;
    BlockRef ref;
  };
  std::vector<PendingBlock> pend;
  // Legacy path — per client: the job that still has free tiles.
  std::unordered_map<u64, std::size_t> open_job;
  std::size_t admitted_blocks = 0;

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto& req = requests[r];
    TranscipherResult& res = results[r];
    res.client_id = req.client_id;
    res.nonce = req.nonce;

    auto it = sessions_.find(req.client_id);
    if (it == sessions_.end()) {
      res.status = RequestStatus::kUnknownSession;
      res.error = "no session for client";
      continue;
    }
    Session& session = it->second;
    if (req.symmetric_ct.empty()) {
      res.status = RequestStatus::kInvalidRequest;
      res.error = "empty request";
      continue;
    }
    if (req.symmetric_ct.size() > service_config_.max_request_elems) {
      res.status = RequestStatus::kInvalidRequest;
      res.error = "request exceeds max_request_elems";
      continue;
    }
    if (session.nonce_set.contains(req.nonce)) {
      res.status = RequestStatus::kNonceReplay;
      res.error = "nonce replay";
      continue;
    }
    const std::size_t nblocks = (req.symmetric_ct.size() + t - 1) / t;
    const bool overloaded =
        packing ? !scheduler.can_accept(nblocks)
                : service_config_.max_pending_blocks != 0 &&
                      admitted_blocks + nblocks >
                          service_config_.max_pending_blocks;
    if (overloaded) {
      // Shed BEFORE the nonce is recorded, so the client can resubmit the
      // same request once load drops.
      res.status = RequestStatus::kOverloaded;
      res.error = "admission load shed";
      continue;
    }
    session.nonce_set.insert(req.nonce);
    session.nonce_order.push_back(req.nonce);
    if (session.nonce_order.size() > service_config_.max_tracked_nonces) {
      session.nonce_set.erase(session.nonce_order.front());
      session.nonce_order.pop_front();
    }
    touch(req.client_id, session);
    admitted_blocks += nblocks;

    res.blocks.resize(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t begin = b * t;
      const std::size_t len = std::min(t, req.symmetric_ct.size() - begin);
      hhe::SimdBlockRequest block;
      block.nonce = req.nonce;
      block.counter = b;  // block i of a message uses counter i
      block.symmetric_ct.assign(
          req.symmetric_ct.begin() + static_cast<long>(begin),
          req.symmetric_ct.begin() + static_cast<long>(begin + len));
      if (packing) {
        const double now = seconds_since(t_start);
        const bool accepted = scheduler.submit(
            ScheduledBlock{.tenant = req.client_id,
                           .handle = pend.size(),
                           .arrival_s = now},
            now);
        POE_ENSURE(accepted, "scheduler refused a pre-admitted block");
        pend.push_back(
            PendingBlock{std::move(block), BlockRef{.request = r, .block = b}});
      } else {
        auto open = open_job.find(req.client_id);
        if (open == open_job.end() ||
            jobs[open->second].blocks.size() >= max_batch_) {
          open_job[req.client_id] = jobs.size();
          BatchJob job;
          job.client_id = req.client_id;
          jobs.push_back(std::move(job));
          open = open_job.find(req.client_id);
        }
        BatchJob& job = jobs[open->second];
        job.blocks.push_back(std::move(block));
        job.refs.push_back(BlockRef{.request = r, .block = b});
      }
      ++rep.blocks;
    }
  }
  if (packing) {
    // End of the admission stream: flush whatever is still forming and
    // materialise the formed batches (tile i = blocks[i], arrival order).
    scheduler.drain(seconds_since(t_start));
    while (auto formed = scheduler.next()) {
      BatchJob job;
      job.blocks.reserve(formed->blocks.size());
      for (const ScheduledBlock& sb : formed->blocks) {
        job.blocks.push_back(std::move(pend[sb.handle].block));
        job.refs.push_back(pend[sb.handle].ref);
        job.tenants.push_back(sb.tenant);
      }
      jobs.push_back(std::move(job));
    }
  }
  rep.batches = jobs.size();

  // ---- Two-stage pipeline: prepare (CPU) -> evaluate (BGV), each stage
  // ---- under a virtual-time timeout with bounded backoff retry. Producer
  // ---- and consumer only ever touch a job's outcome on their own side of
  // ---- the queue handoff, so outcomes needs no lock.
  struct Prepared {
    std::size_t job = 0;
    hhe::PreparedSimdBatch batch;
  };
  enum class BatchState {
    kPending, kDone, kShed, kQuarantined, kTimedOut, kFailed
  };
  struct BatchOutcome {
    BatchState state = BatchState::kPending;
    std::string error;
    std::size_t retries = 0;
    std::size_t timeouts = 0;
    bool recovered = false;
    double prepare_s = 0;
    double eval_s = 0;
  };
  std::vector<BatchOutcome> outcomes(jobs.size());

  // Run `body` with retry/backoff under the stage timeout. Injected stalls
  // charge virtual time (FaultInjector sleeps a bounded real slice), so a
  // "slow stage" is reproducible without slow tests. True on success.
  auto run_stage = [&](std::string_view site, std::string_view stall_site,
                       auto&& body, BatchOutcome& out,
                       double& stage_s) -> bool {
    const std::size_t max_attempts = service_config_.max_stage_attempts;
    const double timeout_s = service_config_.stage_timeout_s;
    bool last_was_timeout = false;
    std::string last_error;
    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        ++out.retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            service_config_.backoff_base_s *
            static_cast<double>(1ull << (attempt - 2))));
      }
      const auto t0 = Clock::now();
      try {
        const double charged = fault_stall_s(exec, stall_site);
        fault_point(exec, site);
        body();
        const double elapsed = seconds_since(t0) + charged;
        if (timeout_s > 0 && elapsed > timeout_s) {
          ++out.timeouts;
          last_was_timeout = true;
          last_error = "stage exceeded timeout";
          continue;
        }
        stage_s += elapsed;
        if (attempt > 1) out.recovered = true;
        return true;
      } catch (const poe::Error& e) {
        last_was_timeout = false;
        last_error = e.what();
      } catch (const std::bad_alloc&) {
        last_was_timeout = false;
        last_error = "allocation failure";
      }
    }
    out.state =
        last_was_timeout ? BatchState::kTimedOut : BatchState::kFailed;
    out.error = last_error;
    return false;
  };

  std::vector<std::size_t> missing(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    missing[r] = results[r].blocks.size();
  }
  double min_noise = 1e9;
  double min_predicted = 1e9;
  std::size_t evaluated_batches = 0;

  auto prepare_one = [&](std::size_t j, Prepared& prepared) -> bool {
    prepared.job = j;
    return run_stage(
        "service.prepare", "service.prepare.stall",
        [&] { prepared.batch = engine_.prepare(jobs[j].blocks); },
        outcomes[j], outcomes[j].prepare_s);
  };

  // Consumer side: poison-pill gate + evaluation of one prepared batch.
  // Packed batches may span several tenants: each tenant is validated
  // separately, quarantined tenants are dropped from the key merge (their
  // tiles get an all-zero key and their requests degrade to kQuarantined),
  // and every survivor receives a masked extraction of the shared output.
  // The keystream circuit is tile-local, so the survivors' slots decode
  // bit-identical to a run without the quarantined tenant.
  auto consume_packed = [&](Prepared& prepared) {
    const std::size_t j = prepared.job;
    const BatchJob& job = jobs[j];
    // Tiles grouped by tenant, in first-arrival order — the fault sites
    // below fire in deterministic tenant order for the chaos harness.
    std::vector<u64> tenant_order;
    std::unordered_map<u64, std::vector<std::size_t>> tiles_of;
    for (std::size_t i = 0; i < job.tenants.size(); ++i) {
      auto [pos, fresh] = tiles_of.try_emplace(job.tenants[i]);
      if (fresh) tenant_order.push_back(job.tenants[i]);
      pos->second.push_back(i);
    }
    std::vector<hhe::TenantTiles> live;
    std::vector<u64> live_ids;
    std::unordered_set<u64> dead;
    for (const u64 tenant : tenant_order) {
      Session& session = sessions_.at(tenant);
      if (service_config_.validate_sessions) {
        if (!session.key_ct.parts.empty()) {
          fault_corrupt(exec, "service.key.corrupt",
                        session.key_ct.parts[0].rns(0));
          if (tenant_order.size() > 1) {
            // Packed-batch-specific site: poison a key mid-pack (arm with
            // `after` to hit the second or later tenant of the batch).
            fault_corrupt(exec, "service.pack.key.corrupt",
                          session.key_ct.parts[0].rns(0));
          }
        }
        if (auto why = fhe::validate_ciphertext(bgv_.rns(), session.key_ct)) {
          dead.insert(tenant);
          for (const std::size_t i : tiles_of[tenant]) {
            TranscipherResult& res = results[job.refs[i].request];
            if (res.status == RequestStatus::kOk) {
              res.status = RequestStatus::kQuarantined;
              res.error = "session key implausible: " + *why;
            }
          }
          continue;
        }
      }
      live.push_back(hhe::TenantTiles{&session.key_ct, tiles_of[tenant]});
      live_ids.push_back(tenant);
    }
    if (live.empty()) {
      outcomes[j].state = BatchState::kQuarantined;
      outcomes[j].error = "every tenant of the batch was quarantined";
      return;
    }
    std::unordered_map<u64, std::shared_ptr<const fhe::Ciphertext>> out_of;
    double batch_noise = 0;
    double batch_predicted = 0;
    const bool ok = run_stage(
        "service.evaluate", "service.evaluate.stall",
        [&] {
          const fhe::Ciphertext packed_key = engine_.merge_tenant_keys(live);
          hhe::ServerReport server_report;
          const fhe::Ciphertext batch_out =
              engine_.evaluate(packed_key, prepared.batch, &server_report);
          out_of.clear();
          batch_noise = 1e9;
          batch_predicted = 1e9;
          for (std::size_t v = 0; v < live.size(); ++v) {
            auto ct = std::make_shared<const fhe::Ciphertext>(
                engine_.extract_tiles(batch_out, live[v].tiles));
            // The extraction mask costs noise: report the deliverable's
            // budget, not the pre-mask batch output's.
            batch_noise = std::min(batch_noise, bgv_.noise_budget_bits(*ct));
            batch_predicted =
                std::min(batch_predicted, bgv_.predicted_budget_bits(*ct));
            out_of[live_ids[v]] = std::move(ct);
          }
        },
        outcomes[j], outcomes[j].eval_s);
    if (!ok) return;
    outcomes[j].state = BatchState::kDone;
    min_noise = std::min(min_noise, batch_noise);
    min_predicted = std::min(min_predicted, batch_predicted);
    ++evaluated_batches;
    for (std::size_t i = 0; i < job.refs.size(); ++i) {
      if (dead.contains(job.tenants[i])) continue;
      const BlockRef& ref = job.refs[i];
      results[ref.request].blocks[ref.block] =
          PlacedBlock{out_of.at(job.tenants[i]), i, prepared.batch.lens[i]};
      if (--missing[ref.request] == 0) {
        rep.request_latency_s[ref.request] = seconds_since(t_start);
      }
    }
  };

  auto consume_one = [&](Prepared prepared) {
    if (packing) {
      consume_packed(prepared);
      return;
    }
    const std::size_t j = prepared.job;
    const BatchJob& job = jobs[j];
    Session& session = sessions_.at(job.client_id);
    if (service_config_.validate_sessions) {
      if (!session.key_ct.parts.empty()) {
        fault_corrupt(exec, "service.key.corrupt",
                      session.key_ct.parts[0].rns(0));
      }
      if (auto why = fhe::validate_ciphertext(bgv_.rns(), session.key_ct)) {
        outcomes[j].state = BatchState::kQuarantined;
        outcomes[j].error = "session key implausible: " + *why;
        return;
      }
    }
    std::shared_ptr<const fhe::Ciphertext> ct;
    double batch_noise = 0;
    double batch_predicted = 0;
    const bool ok = run_stage(
        "service.evaluate", "service.evaluate.stall",
        [&] {
          hhe::ServerReport server_report;
          ct = std::make_shared<const fhe::Ciphertext>(engine_.evaluate(
              session.key_ct, prepared.batch, &server_report));
          batch_noise = server_report.min_noise_budget_bits;
          batch_predicted = server_report.predicted_min_budget_bits;
        },
        outcomes[j], outcomes[j].eval_s);
    if (!ok) return;
    outcomes[j].state = BatchState::kDone;
    min_noise = std::min(min_noise, batch_noise);
    min_predicted = std::min(min_predicted, batch_predicted);
    ++evaluated_batches;
    for (std::size_t i = 0; i < job.refs.size(); ++i) {
      const BlockRef& ref = job.refs[i];
      results[ref.request].blocks[ref.block] =
          PlacedBlock{ct, i, prepared.batch.lens[i]};
      if (--missing[ref.request] == 0) {
        rep.request_latency_s[ref.request] = seconds_since(t_start);
      }
    }
  };

  if (service_config_.pipelined && !jobs.empty()) {
    BoundedQueue<Prepared> queue(service_config_.pipeline_depth);
    std::exception_ptr prepare_error;
    std::thread producer([&] {
      try {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          Prepared prepared;
          if (!prepare_one(j, prepared)) continue;
          if (fault_forced(exec, "service.queue.full")) {
            outcomes[j].state = BatchState::kShed;
            outcomes[j].error = "pipeline queue saturated (injected)";
            continue;
          }
          PushStatus st;
          if (service_config_.queue_push_timeout_s > 0) {
            st = queue.push_for(std::move(prepared),
                                std::chrono::duration<double>(
                                    service_config_.queue_push_timeout_s));
          } else {
            st = queue.push(std::move(prepared));
          }
          if (st == PushStatus::kClosed) break;  // consumer shut down
          if (st == PushStatus::kTimedOut) {
            outcomes[j].state = BatchState::kShed;
            outcomes[j].error = "pipeline queue saturated beyond timeout";
          }
        }
      } catch (...) {
        prepare_error = std::current_exception();
      }
      queue.close();
    });
    try {
      while (auto prepared = queue.pop()) consume_one(std::move(*prepared));
    } catch (...) {
      queue.close();  // unblock the producer before re-throwing
      producer.join();
      throw;
    }
    producer.join();
    if (prepare_error) std::rethrow_exception(prepare_error);
    rep.prepare_stalls = queue.push_stalls();
    rep.eval_stalls = queue.pop_stalls();
    rep.max_queue_depth = queue.max_depth();
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      Prepared prepared;
      if (!prepare_one(j, prepared)) continue;
      consume_one(std::move(prepared));
    }
  }

  // ---- Degrade requests of unfinished batches to their typed status; a
  // ---- request spanning several batches takes the first failure.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const BatchOutcome& out = outcomes[j];
    rep.prepare_s += out.prepare_s;
    rep.eval_s += out.eval_s;
    rep.faults.retries += out.retries;
    rep.faults.stage_timeouts += out.timeouts;
    if (out.recovered && out.state == BatchState::kDone) {
      ++rep.faults.recovered_batches;
    }
    if (out.state == BatchState::kDone) continue;
    RequestStatus degraded = RequestStatus::kFailed;
    switch (out.state) {
      case BatchState::kShed: degraded = RequestStatus::kOverloaded; break;
      case BatchState::kQuarantined:
        degraded = RequestStatus::kQuarantined;
        break;
      case BatchState::kTimedOut: degraded = RequestStatus::kTimedOut; break;
      default: degraded = RequestStatus::kFailed; break;
    }
    for (const BlockRef& ref : jobs[j].refs) {
      TranscipherResult& res = results[ref.request];
      if (res.status == RequestStatus::kOk) {
        res.status = degraded;
        res.error = out.error.empty() ? "pipeline aborted" : out.error;
      }
    }
  }

  // ---- Terminal accounting: the status buckets partition the requests.
  for (TranscipherResult& res : results) {
    switch (res.status) {
      case RequestStatus::kOk:
        ++rep.faults.ok;
        // Per-session serving stats (part of the SessionState snapshot).
        // The session can legitimately be gone by now — LRU-evicted by a
        // later open_session in this very call is impossible, but keep the
        // lookup defensive.
        if (auto sit = sessions_.find(res.client_id); sit != sessions_.end()) {
          ++sit->second.requests_served;
          sit->second.blocks_served += res.blocks.size();
        }
        break;
      case RequestStatus::kUnknownSession:
      case RequestStatus::kNonceReplay:
      case RequestStatus::kInvalidRequest:
        ++rep.faults.rejected;
        res.blocks.clear();
        break;
      case RequestStatus::kOverloaded:
        ++rep.faults.shed;
        res.blocks.clear();
        break;
      case RequestStatus::kQuarantined:
        ++rep.faults.quarantined;
        res.blocks.clear();
        break;
      case RequestStatus::kTimedOut:
        ++rep.faults.timed_out;
        res.blocks.clear();
        break;
      case RequestStatus::kFailed:
        ++rep.faults.failed;
        res.blocks.clear();
        break;
    }
  }

  rep.total_s = seconds_since(t_start);
  rep.min_noise_budget_bits = evaluated_batches > 0 ? min_noise : 0;
  rep.predicted_min_budget_bits = evaluated_batches > 0 ? min_predicted : 0;
  rep.avg_batch_occupancy = 0;
  if (!jobs.empty()) {
    for (const auto& job : jobs) {
      rep.avg_batch_occupancy +=
          double(job.blocks.size()) / double(max_batch_);
    }
    rep.avg_batch_occupancy /= double(jobs.size());
  }
  rep.blocks_per_s = rep.total_s > 0 ? double(rep.blocks) / rep.total_s : 0;
  if (packing) {
    const SchedulerStats& sched = scheduler.stats();
    rep.full_flushes = sched.full_flushes;
    rep.deadline_flushes = sched.deadline_flushes;
    rep.drain_flushes = sched.drain_flushes;
    rep.cross_tenant_batches = sched.cross_tenant_batches;
    rep.max_batch_wait_s = sched.max_wait_s;
  }
  rep.session_evictions = evictions_;
  rep.faults.injected =
      injector != nullptr ? injector->fired_total() - fired_before : 0;
  rep.exec_ops = exec.snapshot() - before;
  rep.kernel_backend = std::string(exec.kernel_backend_name());
  return results;
}

std::vector<u64> TranscipherService::decode_block(const hhe::HheConfig& config,
                                                  const fhe::Bgv& bgv,
                                                  const PlacedBlock& block) {
  POE_ENSURE(block.ct != nullptr, "block was never evaluated");
  return hhe::SimdBatchEngine::decode_block(config, bgv, *block.ct,
                                            block.tile, block.len);
}

}  // namespace poe::service
