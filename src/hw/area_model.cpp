#include "hw/area_model.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace poe::hw {

namespace {

// Paper Table I (Artix-7 @75 MHz) — the calibration anchors.
const std::vector<Table1Row> kTable1 = {
    {"PASTA-3", 128, 17, 65468, 36275, 256},
    {"PASTA-4", 32, 17, 23736, 11132, 64},
    {"PASTA-4", 32, 33, 42330, 20783, 256},
    {"PASTA-4", 32, 54, 67324, 32711, 576},
};

// Solve the 3x3 system M*x = y (Cramer's rule; well-conditioned here).
void solve3(const double m[3][3], const double y[3], double x[3]) {
  auto det3 = [](const double a[3][3]) {
    return a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
           a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
           a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  };
  const double d = det3(m);
  POE_ENSURE(std::abs(d) > 1e-12, "singular calibration system");
  for (int col = 0; col < 3; ++col) {
    double mc[3][3];
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) mc[i][j] = j == col ? y[i] : m[i][j];
    x[col] = det3(mc) / d;
  }
}

// Fit a*w^2 + b*w + c through three (w, value) points.
void fit_quadratic(const double w[3], const double v[3], double out[3]) {
  const double m[3][3] = {{w[0] * w[0], w[0], 1},
                          {w[1] * w[1], w[1], 1},
                          {w[2] * w[2], w[2], 1}};
  solve3(m, v, out);
}

double eval_quad(const double q[3], double w) {
  return q[0] * w * w + q[1] * w + q[2];
}

}  // namespace

const std::vector<Table1Row>& paper_table1() { return kTable1; }

std::uint64_t AreaModel::dsp_per_multiplier(unsigned omega) {
  // An omega x omega product on DSP48 blocks (18-bit native operands).
  const std::uint64_t n = ceil_div(omega, 18);
  return n * n;
}

AreaModel::AreaModel() {
  const auto& t1 = kTable1;
  // Intercept (SHAKE128 core + control) from the two omega=17 rows:
  // lut(t) = fixed + t * var(17).
  const double var17_lut =
      static_cast<double>(t1[0].lut - t1[1].lut) /
      static_cast<double>(t1[0].t - t1[1].t);
  lut_fixed_ = static_cast<double>(t1[1].lut) - 32.0 * var17_lut;
  const double var17_ff =
      static_cast<double>(t1[0].ff - t1[1].ff) /
      static_cast<double>(t1[0].t - t1[1].t);
  ff_fixed_ = static_cast<double>(t1[1].ff) - 32.0 * var17_ff;

  // Omega dependence of the per-element cost from the three PASTA-4 rows.
  const double w[3] = {17, 33, 54};
  const double lut_v[3] = {
      var17_lut,
      (static_cast<double>(t1[2].lut) - lut_fixed_) / 32.0,
      (static_cast<double>(t1[3].lut) - lut_fixed_) / 32.0,
  };
  fit_quadratic(w, lut_v, lut_quad_);
  const double ff_v[3] = {
      var17_ff,
      (static_cast<double>(t1[2].ff) - ff_fixed_) / 32.0,
      (static_cast<double>(t1[3].ff) - ff_fixed_) / 32.0,
  };
  fit_quadratic(w, ff_v, ff_quad_);

  // ASIC 28nm: 0.24 mm^2 at (t=32, omega=17); x2.1 and x4.3 growth at
  // omega = 33 / 54 (§IV-A ②). Fixed fraction taken from the LUT model.
  const double fixed_fraction = lut_fixed_ / static_cast<double>(t1[1].lut);
  asic_fixed_28_ = 0.24 * fixed_fraction;
  asic_var_28_ = 0.24 - asic_fixed_28_;
  const double rho_v[3] = {
      1.0,
      (0.24 * 2.1 - asic_fixed_28_) / asic_var_28_,
      (0.24 * 4.3 - asic_fixed_28_) / asic_var_28_,
  };
  fit_quadratic(w, rho_v, asic_rho_quad_);

  // "The maximum power consumed by the design is 1.2 W" — anchor the power
  // density to the largest configuration (PASTA-3, omega=54) at 28nm/1GHz.
  const double max_area =
      asic_fixed_28_ + asic_var_28_ * eval_quad(asic_rho_quad_, 54) *
                           (128.0 / 32.0);
  power_density_w_per_mm2_ = 1.2 / max_area;
}

double AreaModel::lut_variable(unsigned omega) const {
  return eval_quad(lut_quad_, omega);
}
double AreaModel::ff_variable(unsigned omega) const {
  return eval_quad(ff_quad_, omega);
}
double AreaModel::asic_rho(unsigned omega) const {
  return eval_quad(asic_rho_quad_, omega);
}

FpgaResources AreaModel::fpga(const pasta::PastaParams& params) const {
  POE_ENSURE(params.prime_bits() >= 17 && params.prime_bits() <= 60,
             "model calibrated for 17-60 bit primes");
  const double t = static_cast<double>(params.t);
  const unsigned omega = params.prime_bits();
  FpgaResources r;
  r.lut = static_cast<std::uint64_t>(
      std::llround(lut_fixed_ + t * lut_variable(omega)));
  r.ff = static_cast<std::uint64_t>(
      std::llround(ff_fixed_ + t * ff_variable(omega)));
  r.dsp = 2 * params.t * dsp_per_multiplier(omega);
  r.bram = 0;  // row streaming removes all matrix storage (§III-C)
  return r;
}

double AreaModel::asic_mm2(const pasta::PastaParams& params,
                           unsigned node_nm) const {
  const double area28 =
      asic_fixed_28_ + asic_var_28_ * asic_rho(params.prime_bits()) *
                           (static_cast<double>(params.t) / 32.0);
  switch (node_nm) {
    case 28:
      return area28;
    case 7:
      // Paper: 0.24 mm^2 -> 0.03 mm^2, a uniform 8x shrink.
      return area28 * (0.03 / 0.24);
    default:
      throw Error("ASIC model supports 28nm and 7nm, got " +
                  std::to_string(node_nm));
  }
}

double AreaModel::asic_power_w(const pasta::PastaParams& params,
                               unsigned node_nm) const {
  // First-order: dynamic power tracks switched capacitance ~ area at fixed
  // frequency and comparable voltage.
  return power_density_w_per_mm2_ * asic_mm2(params, 28) *
         (node_nm == 7 ? 0.5 : 1.0);
}

std::vector<ModuleShare> AreaModel::breakdown(
    const pasta::PastaParams& params, const std::string& platform) const {
  POE_ENSURE(platform == "fpga" || platform == "asic",
             "platform must be 'fpga' or 'asic'");
  // Structural weights of the t-dependent area: two multiplier arrays
  // dominate; MatGen additionally carries the MAC adders and the two stored
  // rows, MatMul the pipelined adder tree. On FPGA the multiplier cores map
  // to DSP blocks, so their *LUT* share is smaller; on ASIC they are
  // synthesised gates and weigh more (this is why the paper's two pies
  // differ).
  double kMatGen, kMatMul, kModAdd, kDataGen, kReduction;
  double fixed, variable;
  if (platform == "fpga") {
    kMatGen = 0.38;
    kMatMul = 0.27;
    kModAdd = 0.13;
    kDataGen = 0.12;
    kReduction = 0.10;
    const auto r = fpga(params);
    fixed = lut_fixed_;
    variable = static_cast<double>(r.lut) - fixed;
  } else {
    kMatGen = 0.44;
    kMatMul = 0.32;
    kModAdd = 0.08;
    kDataGen = 0.06;
    kReduction = 0.10;
    fixed = asic_fixed_28_;
    variable = asic_mm2(params, 28) - fixed;
  }
  const double total = fixed + variable;
  std::vector<ModuleShare> out;
  out.push_back({"MatGen (MAC array)", variable * kMatGen / total});
  out.push_back({"MatMul (mul array + adder tree)", variable * kMatMul / total});
  out.push_back({"ModAdd (VecAdd/Mix/S-box)", variable * kModAdd / total});
  out.push_back({"DataGen (sampler + ping-pong)", variable * kDataGen / total});
  out.push_back({"ModRed (add-shift reduction)", variable * kReduction / total});
  out.push_back({"SHAKE128 core", fixed * 0.85 / total});
  out.push_back({"Control/Rem.", fixed * 0.15 / total});
  return out;
}

}  // namespace poe::hw
