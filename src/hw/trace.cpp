#include "hw/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace poe::hw {

const char* unit_name(Unit unit) {
  switch (unit) {
    case Unit::kXof: return "xof";
    case Unit::kMatEngine: return "mat_engine";
    case Unit::kVecAdd: return "vec_add";
    case Unit::kMixSbox: return "mix_sbox";
  }
  throw Error("unknown unit");
}

void ScheduleTrace::add(Unit unit, std::uint64_t start, std::uint64_t end,
                        std::string label) {
  POE_ENSURE(end >= start, "event ends before it starts");
  events_.push_back(TraceEvent{unit, start, end, std::move(label)});
}

std::uint64_t ScheduleTrace::busy_cycles(Unit unit) const {
  std::uint64_t sum = 0;
  for (const auto& e : events_) {
    if (e.unit == unit) sum += e.end - e.start;
  }
  return sum;
}

double ScheduleTrace::utilisation(Unit unit,
                                  std::uint64_t total_cycles) const {
  if (total_cycles == 0) return 0;
  return static_cast<double>(busy_cycles(unit)) /
         static_cast<double>(total_cycles);
}

void ScheduleTrace::print_timeline(std::ostream& os,
                                   std::uint64_t total_cycles,
                                   unsigned width) const {
  POE_ENSURE(width >= 10, "timeline too narrow");
  const double scale =
      static_cast<double>(total_cycles) / static_cast<double>(width);
  for (Unit unit : {Unit::kXof, Unit::kMatEngine, Unit::kVecAdd,
                    Unit::kMixSbox}) {
    std::string row(width, '.');
    for (const auto& e : events_) {
      if (e.unit != unit) continue;
      const auto from = static_cast<std::size_t>(
          std::min<double>(width - 1, static_cast<double>(e.start) / scale));
      const auto to = static_cast<std::size_t>(
          std::min<double>(width - 1, static_cast<double>(e.end) / scale));
      for (std::size_t i = from; i <= to; ++i) row[i] = '#';
    }
    os << unit_name(unit);
    os << std::string(12 - std::string(unit_name(unit)).size(), ' ');
    os << '|' << row << "|\n";
  }
  os << "             0" << std::string(width - 8, ' ') << total_cycles
     << " cc\n";
}

void ScheduleTrace::write_vcd(std::ostream& os,
                              std::uint64_t total_cycles) const {
  os << "$date today $end\n$version poe ScheduleTrace $end\n"
     << "$timescale 1ns $end\n$scope module pasta_accel $end\n";
  const Unit units[] = {Unit::kXof, Unit::kMatEngine, Unit::kVecAdd,
                        Unit::kMixSbox};
  const char ids[] = {'!', '"', '#', '$'};
  for (int i = 0; i < 4; ++i) {
    os << "$var wire 1 " << ids[i] << ' ' << unit_name(units[i])
       << "_busy $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Build per-cycle transition lists.
  std::map<std::uint64_t, std::vector<std::pair<char, int>>> changes;
  for (const auto& e : events_) {
    int idx = 0;
    while (units[idx] != e.unit) ++idx;
    changes[e.start].push_back({ids[idx], 1});
    changes[e.end].push_back({ids[idx], -1});
  }
  os << "#0\n";
  for (int i = 0; i < 4; ++i) os << "b0 " << ids[i] << '\n';
  int busy[4] = {0, 0, 0, 0};
  for (const auto& [cycle, deltas] : changes) {
    os << '#' << cycle << '\n';
    for (const auto& [id, delta] : deltas) {
      int idx = 0;
      while (ids[idx] != id) ++idx;
      const int before = busy[idx] > 0 ? 1 : 0;
      busy[idx] += delta;
      const int after = busy[idx] > 0 ? 1 : 0;
      if (before != after) os << 'b' << after << ' ' << id << '\n';
    }
  }
  os << '#' << total_cycles << '\n';
}

}  // namespace poe::hw
