#include "hw/countermeasures.hpp"

#include <cmath>

#include "common/error.hpp"

namespace poe::hw {

std::string to_string(Countermeasure cm) {
  switch (cm) {
    case Countermeasure::kNone: return "none";
    case Countermeasure::kTemporalRedundancy: return "temporal redundancy";
    case Countermeasure::kSpatialRedundancy: return "spatial redundancy";
    case Countermeasure::kMasking: return "2-share masking";
  }
  throw Error("unknown countermeasure");
}

CountermeasureCost countermeasure_cost(Countermeasure cm) {
  switch (cm) {
    case Countermeasure::kNone:
      return {};
    case Countermeasure::kTemporalRedundancy:
      // Second pass + comparison cycle; comparator is noise-level area.
      return {.cycle_factor = 2.0,
              .var_area_factor = 1.02,
              .fixed_area_factor = 1.0,
              .detects_transient_faults = true,
              .first_order_sca_protected = false};
    case Countermeasure::kSpatialRedundancy:
      // Duplicate datapath; the XOF can be shared (public data, fault on it
      // affects both copies identically and is caught downstream by the
      // keystream comparison only if duplicated too — we duplicate it).
      return {.cycle_factor = 1.0,
              .var_area_factor = 2.02,
              .fixed_area_factor = 2.0,
              .detects_transient_faults = true,
              .first_order_sca_protected = false};
    case Countermeasure::kMasking:
      // Two shares through every key-dependent multiplier/adder; S-box
      // cross products add ~50% on the multiplier arrays; the XOF processes
      // public data and stays unmasked.
      return {.cycle_factor = 1.1,
              .var_area_factor = 2.5,
              .fixed_area_factor = 1.0,
              .detects_transient_faults = false,
              .first_order_sca_protected = true};
  }
  throw Error("unknown countermeasure");
}

std::uint64_t protected_cycles(std::uint64_t base_cycles, Countermeasure cm) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(base_cycles) *
                   countermeasure_cost(cm).cycle_factor));
}

FpgaResources protected_fpga(const AreaModel& model,
                             const pasta::PastaParams& params,
                             Countermeasure cm) {
  const auto base = model.fpga(params);
  const auto cost = countermeasure_cost(cm);
  // Split into fixed (SHAKE/control) and variable parts: the model is
  // linear in t, so two evaluations reconstruct the split.
  pasta::PastaParams half = params;
  half.t = params.t / 2;
  const auto small = model.fpga(half);
  const double var_lut = static_cast<double>(base.lut - small.lut) * 2.0;
  const double fix_lut = static_cast<double>(base.lut) - var_lut;
  const double var_ff = static_cast<double>(base.ff - small.ff) * 2.0;
  const double fix_ff = static_cast<double>(base.ff) - var_ff;

  FpgaResources out;
  out.lut = static_cast<std::uint64_t>(std::llround(
      fix_lut * cost.fixed_area_factor + var_lut * cost.var_area_factor));
  out.ff = static_cast<std::uint64_t>(std::llround(
      fix_ff * cost.fixed_area_factor + var_ff * cost.var_area_factor));
  out.dsp = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(base.dsp) * cost.var_area_factor));
  out.bram = base.bram;
  return out;
}

DetectionResult run_with_temporal_redundancy(
    const AcceleratorSim& sim, const std::vector<std::uint64_t>& key,
    std::uint64_t nonce, std::uint64_t counter, const FaultInjection* fault) {
  // First pass (possibly faulty — transient fault model).
  const auto first = sim.run_block(key, nonce, counter, fault);
  // Redundant pass on the same hardware.
  const auto second = sim.run_block(key, nonce, counter);

  DetectionResult out;
  out.fault_injected = fault != nullptr;
  out.detected = first.keystream != second.keystream;
  out.cycles = first.stats.total_cycles + second.stats.total_cycles + 1;
  out.keystream = second.keystream;
  return out;
}

}  // namespace poe::hw
