#include "hw/xof_unit.hpp"

#include "common/bits.hpp"

namespace poe::hw {

XofSamplerUnit::XofSamplerUnit(const pasta::PastaParams& params,
                               std::uint64_t nonce, std::uint64_t counter,
                               XofTimingConfig cfg)
    : params_(params),
      cfg_(cfg),
      xof_(keccak::Shake::shake128()),
      mask_(params.sample_mask()) {
  std::uint8_t seed[16];
  store_be64(seed, nonce);
  store_be64(seed + 8, counter);
  xof_.absorb(seed);
  // Absorbing the seed and the first permutation cannot be hidden.
  clock_ = cfg_.absorb_cycles + cfg_.permutation_cycles;
}

std::uint64_t XofSamplerUnit::next_word_cycle() {
  if (word_in_batch_ == cfg_.words_per_batch) {
    // Batch boundary.
    word_in_batch_ = 0;
    if (cfg_.mode == KeccakMode::kOverlapped) {
      // Next buffer's permutation ran during the previous 21+5 window
      // (24 <= 26), so only the handover gap is visible.
      clock_ += cfg_.inter_batch_gap;
    } else {
      // Naive: the permutation serialises with the squeeze.
      clock_ += cfg_.permutation_cycles;
    }
  }
  ++word_in_batch_;
  return ++clock_;
}

XofSamplerUnit::Coefficient XofSamplerUnit::next(bool allow_zero) {
  for (;;) {
    const std::uint64_t cycle = next_word_cycle();
    const std::uint64_t word = xof_.squeeze_u64() & mask_;
    ++words_drawn_;
    if (word < params_.p && (allow_zero || word != 0)) {
      return Coefficient{word, cycle};
    }
    ++words_rejected_;
  }
}

void XofSamplerUnit::stall_until(std::uint64_t cycle) {
  if (cycle > clock_) {
    stall_cycles_ += cycle - clock_;
    clock_ = cycle;
  }
}

}  // namespace poe::hw
