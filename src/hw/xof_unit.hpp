// Cycle-accurate model of the XOF + rejection-sampling front end (§III-A).
//
// The SHAKE128 unit follows the high-performance design of [14] (KaLi): two
// 1600-bit state buffers in ping-pong so the 24-cycle Keccak-f permutation
// runs in parallel with the squeeze. One 64-bit word is squeezed per cycle;
// a squeeze batch is the full rate (1344 bits = 21 words) and consecutive
// batches are separated by 5 cycles of handover. The naive (single-buffer)
// mode — used for the §IV-B ablation — serialises the 24-cycle permutation
// with the 21-cycle squeeze.
//
// The rejection sampler consumes one word per cycle and forwards accepted
// coefficients in the same cycle (mask to ceil(log2 p) bits, accept if < p,
// and non-zero where required). The model is functional: words come from the
// real SHAKE128, so accepted coefficients — and therefore cycle counts —
// depend on the nonce/counter exactly as on the real hardware.
#pragma once

#include <cstdint>

#include "keccak/shake.hpp"
#include "pasta/params.hpp"

namespace poe::hw {

enum class KeccakMode {
  kOverlapped,  ///< double-buffered: permutation hidden behind squeeze (+5cc)
  kNaive,       ///< single buffer: 24cc permutation then 21cc squeeze
};

struct XofTimingConfig {
  KeccakMode mode = KeccakMode::kOverlapped;
  unsigned absorb_cycles = 2;       ///< nonce + counter, one 64-bit word each
  unsigned permutation_cycles = 24; ///< Keccak-f[1600] rounds
  unsigned words_per_batch = 21;    ///< SHAKE128 rate 1344 bits / 64
  unsigned inter_batch_gap = 5;     ///< handover between squeezes ([14])
};

/// Timed stream of accepted field elements.
class XofSamplerUnit {
 public:
  XofSamplerUnit(const pasta::PastaParams& params, std::uint64_t nonce,
                 std::uint64_t counter, XofTimingConfig cfg = {});

  struct Coefficient {
    std::uint64_t value = 0;
    std::uint64_t cycle = 0;  ///< cycle at which the coefficient is registered
  };

  /// Produce the next accepted coefficient and the cycle it becomes valid.
  Coefficient next(bool allow_zero);

  /// Stall the front end until `cycle` (downstream back-pressure: both
  /// DataGen buffers occupied). Subsequent words appear after the stall.
  void stall_until(std::uint64_t cycle);

  std::uint64_t words_drawn() const { return words_drawn_; }
  std::uint64_t words_rejected() const { return words_rejected_; }
  std::uint64_t permutations() const { return xof_.permutation_count(); }
  std::uint64_t stall_cycles() const { return stall_cycles_; }
  /// Cycle at which the most recent word was produced.
  std::uint64_t current_cycle() const { return clock_; }

 private:
  std::uint64_t next_word_cycle();

  pasta::PastaParams params_;
  XofTimingConfig cfg_;
  keccak::Shake xof_;
  std::uint64_t mask_;
  std::uint64_t clock_ = 0;          ///< cycle of the last emitted word
  unsigned word_in_batch_ = 0;       ///< position within the 21-word batch
  std::uint64_t words_drawn_ = 0;
  std::uint64_t words_rejected_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace poe::hw
