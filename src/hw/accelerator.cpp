#include "hw/accelerator.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "modular/modulus.hpp"

namespace poe::hw {

namespace {
using pasta::Block;
using u64 = std::uint64_t;
}  // namespace

AcceleratorSim::AcceleratorSim(const pasta::PastaParams& params,
                               XofTimingConfig xof_cfg,
                               ComputeTimingConfig compute_cfg)
    : params_(params), xof_cfg_(xof_cfg), compute_cfg_(compute_cfg) {
  POE_ENSURE(params_.t >= 2 && params_.rounds >= 1, "degenerate parameters");
}

BlockResult AcceleratorSim::run_block(const std::vector<u64>& key, u64 nonce,
                                      u64 counter, const FaultInjection* fault,
                                      ScheduleTrace* trace) const {
  POE_ENSURE(key.size() == params_.key_size(),
             "key must have " << params_.key_size() << " elements");
  const mod::Modulus mod(params_.p);
  const std::size_t t = params_.t;
  const u64 mat_latency =
      compute_cfg_.matmul_pipeline_fill + t + ceil_log2(t);

  XofSamplerUnit xof(params_, nonce, counter, xof_cfg_);
  CycleStats stats;

  // Functional state.
  Block left(key.begin(), key.begin() + static_cast<std::ptrdiff_t>(t));
  Block right(key.begin() + static_cast<std::ptrdiff_t>(t), key.end());

  // Unit availability (cycle at which the unit can accept new work).
  u64 mat_engine_free = 0;  // MatGen MAC array + MatMul multipliers/tree
  u64 add_unit_free = 0;    // t-wide modular adder array
  u64 state_ready = 0;      // both state halves registered

  // DataGen ping-pong: release cycle of each of the two vector buffers.
  u64 buffer_release[2] = {0, 0};
  std::size_t vec_index = 0;

  // Fill the next t-element vector; returns (data, ready_cycle).
  auto fill_vector = [&](bool allow_zero) -> std::pair<Block, u64> {
    const std::size_t index = vec_index;
    const std::size_t buf = vec_index++ % 2;
    // Back-pressure: the buffer must have been drained by its consumer.
    xof.stall_until(buffer_release[buf]);
    Block v(t);
    u64 first_cycle = 0, last_cycle = 0;
    for (auto& coeff : v) {
      const auto c = xof.next(allow_zero);
      if (first_cycle == 0) first_cycle = c.cycle;
      coeff = c.value;
      last_cycle = c.cycle;
    }
    if (trace != nullptr) {
      trace->add(Unit::kXof, first_cycle, last_cycle + 1,
                 "V" + std::to_string(index));
    }
    return {std::move(v), last_cycle + 1};  // +1: vector register stage
  };
  auto set_release = [&](std::size_t vectors_ago, u64 cycle) {
    buffer_release[(vec_index - vectors_ago) % 2] = cycle;
  };

  u64 final_mix_end = 0;
  for (std::size_t layer = 0; layer < params_.affine_layers(); ++layer) {
    // --- Matrix halves through the shared MatGen/MatMul engine.
    const auto [alpha_l, ready_al] = fill_vector(/*allow_zero=*/false);
    u64 start_ml = std::max({ready_al, mat_engine_free, state_ready});
    stats.compute_wait_cycles +=
        ready_al > std::max(mat_engine_free, state_ready)
            ? ready_al - std::max(mat_engine_free, state_ready)
            : 0;
    const u64 end_ml = start_ml + mat_latency;
    mat_engine_free = end_ml;
    stats.mat_engine_busy += mat_latency;
    set_release(1, end_ml);
    if (trace != nullptr) {
      trace->add(Unit::kMatEngine, start_ml, end_ml,
                 "A" + std::to_string(layer) + " mat L");
    }

    const auto [alpha_r, ready_ar] = fill_vector(false);
    const u64 start_mr = std::max({ready_ar, mat_engine_free, state_ready});
    const u64 end_mr = start_mr + mat_latency;
    mat_engine_free = end_mr;
    stats.mat_engine_busy += mat_latency;
    set_release(1, end_mr);
    if (trace != nullptr) {
      trace->add(Unit::kMatEngine, start_mr, end_mr,
                 "A" + std::to_string(layer) + " mat R");
    }

    // --- Round constants through the adder array.
    const auto [rc_l, ready_rcl] = fill_vector(/*allow_zero=*/true);
    const u64 end_addl =
        std::max({end_ml, ready_rcl, add_unit_free}) + compute_cfg_.vecadd_latency;
    add_unit_free = end_addl;
    stats.add_unit_busy += compute_cfg_.vecadd_latency;
    set_release(1, end_addl);
    if (trace != nullptr) {
      trace->add(Unit::kVecAdd, end_addl - compute_cfg_.vecadd_latency,
                 end_addl, "A" + std::to_string(layer) + " rc L");
    }

    const auto [rc_r, ready_rcr] = fill_vector(true);
    const u64 end_addr =
        std::max({end_mr, ready_rcr, add_unit_free}) + compute_cfg_.vecadd_latency;
    add_unit_free = end_addr;
    stats.add_unit_busy += compute_cfg_.vecadd_latency;
    set_release(1, end_addr);
    if (trace != nullptr) {
      trace->add(Unit::kVecAdd, end_addr - compute_cfg_.vecadd_latency,
                 end_addr, "A" + std::to_string(layer) + " rc R");
    }

    // Functional affine on both halves.
    left = pasta::affine(mod, alpha_l, rc_l, left);
    right = pasta::affine(mod, alpha_r, rc_r, right);
    if (fault != nullptr && fault->affine_layer == layer) {
      auto& half = fault->left_half ? left : right;
      POE_ENSURE(fault->element < half.size(), "fault element out of range");
      half[fault->element] =
          mod.add(half[fault->element], fault->delta % params_.p);
    }

    const bool last_layer = layer == params_.affine_layers() - 1;
    const u64 mix_start = std::max(end_addr, add_unit_free);
    if (last_layer) {
      // Final Mix + truncated output streaming: t cycles (§IV-B).
      pasta::mix(mod, left, right);
      final_mix_end = mix_start + t;
      stats.add_unit_busy += t;
      if (trace != nullptr) {
        trace->add(Unit::kMixSbox, mix_start, final_mix_end, "final mix");
      }
      break;
    }

    const u64 mix_end = mix_start + compute_cfg_.mix_latency;
    add_unit_free = mix_end;
    stats.add_unit_busy += compute_cfg_.mix_latency;
    pasta::mix(mod, left, right);
    if (trace != nullptr) {
      trace->add(Unit::kMixSbox, mix_start, mix_end,
                 "mix " + std::to_string(layer));
    }

    // S-box shares the MatMul multipliers and the adder array, so the next
    // layer's matrix work must wait for it.
    const bool cube = layer == params_.rounds - 1;
    const unsigned sbox_latency = cube ? compute_cfg_.sbox_cube_latency
                                       : compute_cfg_.sbox_feistel_latency;
    const u64 sbox_end = std::max(mix_end, mat_engine_free) + sbox_latency;
    mat_engine_free = std::max(mat_engine_free, sbox_end);
    add_unit_free = std::max(add_unit_free, sbox_end);
    stats.mul_unit_sbox_busy += sbox_latency;
    if (trace != nullptr) {
      trace->add(Unit::kMixSbox, sbox_end - sbox_latency, sbox_end,
                 (cube ? "cube " : "feistel ") + std::to_string(layer));
    }
    if (cube) {
      pasta::sbox_cube(mod, left);
      pasta::sbox_cube(mod, right);
    } else {
      pasta::sbox_feistel(mod, left);
      pasta::sbox_feistel(mod, right);
    }
    state_ready = sbox_end;
  }

  stats.total_cycles = final_mix_end;
  stats.xof_last_word_cycle = xof.current_cycle();
  stats.permutations = xof.permutations();
  stats.words_drawn = xof.words_drawn();
  stats.words_rejected = xof.words_rejected();
  stats.xof_stall_cycles = xof.stall_cycles();
  return BlockResult{std::move(left), stats};
}

AcceleratorSim::EncryptResult AcceleratorSim::encrypt(
    const std::vector<u64>& key, std::span<const u64> msg, u64 nonce) const {
  const mod::Modulus mod(params_.p);
  EncryptResult out;
  out.ciphertext.resize(msg.size());
  const std::size_t t = params_.t;
  for (std::size_t block = 0; block * t < msg.size(); ++block) {
    BlockResult res = run_block(key, nonce, block);
    const std::size_t begin = block * t;
    const std::size_t end = std::min(msg.size(), begin + t);
    for (std::size_t i = begin; i < end; ++i) {
      POE_ENSURE(msg[i] < params_.p, "message element out of range");
      out.ciphertext[i] = mod.add(msg[i], res.keystream[i - begin]);
    }
    out.total_cycles += res.stats.total_cycles;
    out.per_block.push_back(res.stats);
  }
  return out;
}

}  // namespace poe::hw
