// Area / resource / power model of the cryptoprocessor (§IV-A, Table I,
// Fig. 7 of the paper).
//
// The paper reports post-synthesis numbers from Vivado (Artix-7) and Cadence
// Genus (TSMC 28nm, ASAP7 7nm). We replace synthesis with a structural model
// calibrated against the paper's own data points:
//
//  * DSP count is purely structural: the design instantiates 2t modular
//    multipliers (t MatGen MACs + t MatMul multipliers) and an omega-bit
//    multiplier costs ceil(omega/18)^2 DSP48 blocks. This reproduces all
//    Table I DSP cells exactly with no fitting.
//  * LUT/FF split into a t-independent part (SHAKE128 core + control) and a
//    part linear in t whose per-element cost grows with omega; the omega
//    dependence is a quadratic fitted through the paper's three PASTA-4
//    columns, and the intercept comes from the PASTA-3 row. Table I is
//    reproduced exactly at the calibration points; other configurations are
//    model predictions.
//  * ASIC mm^2 uses the same fixed/variable split calibrated to 0.24 mm^2
//    (28nm) / 0.03 mm^2 (7nm) with the paper's x2.1 / x4.3 growth at
//    omega = 33 / 54.
//
// The per-module breakdown (Fig. 7) distributes the variable part over the
// micro-architecture units by structural weight (multiplier arrays dominate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pasta/params.hpp"

namespace poe::hw {

struct FpgaResources {
  std::uint64_t lut = 0;
  std::uint64_t ff = 0;
  std::uint64_t dsp = 0;
  std::uint64_t bram = 0;  ///< always 0: the design needs no block RAM
};

/// Artix-7 AC701 (xc7a200t) capacity, for utilisation percentages.
struct FpgaDevice {
  std::uint64_t lut = 134600;
  std::uint64_t ff = 269200;
  std::uint64_t dsp = 740;
  std::uint64_t bram = 365;
};

struct ModuleShare {
  std::string module;
  double fraction = 0;  ///< of total area
};

/// Paper Table I rows, used for calibration and for paper-vs-model benches.
struct Table1Row {
  const char* scheme;
  std::size_t t;
  unsigned omega;
  std::uint64_t lut, ff, dsp;
};
const std::vector<Table1Row>& paper_table1();

class AreaModel {
 public:
  AreaModel();

  /// FPGA resources for a PASTA configuration.
  FpgaResources fpga(const pasta::PastaParams& params) const;

  /// ASIC cell area in mm^2; node_nm in {28, 7}.
  double asic_mm2(const pasta::PastaParams& params, unsigned node_nm) const;

  /// Peak power estimate in watts at 1 GHz for the given node.
  double asic_power_w(const pasta::PastaParams& params,
                      unsigned node_nm) const;

  /// Module-wise share of total area (Fig. 7); platform: "fpga" or "asic".
  std::vector<ModuleShare> breakdown(const pasta::PastaParams& params,
                                     const std::string& platform) const;

  /// Structural DSP cost of one omega-bit modular multiplier.
  static std::uint64_t dsp_per_multiplier(unsigned omega);

 private:
  double lut_variable(unsigned omega) const;  ///< per state element
  double ff_variable(unsigned omega) const;
  double asic_rho(unsigned omega) const;  ///< variable-area growth vs omega=17

  // Fitted coefficients (see .cpp for the calibration).
  double lut_fixed_, ff_fixed_;
  double lut_quad_[3], ff_quad_[3];  // a*w^2 + b*w + c
  double asic_fixed_28_, asic_var_28_;  // mm^2, PASTA-4-sized variable part
  double asic_rho_quad_[3];
  double power_density_w_per_mm2_;
};

}  // namespace poe::hw
