// Cycle-accurate model of the PASTA cryptoprocessor (paper Fig. 6).
//
// Data path per affine layer (schedule of Fig. 3):
//
//   XOF/sampler ──► DataGen (ping-pong) ──► V_4i   = M_L first row ─► MatGen+MatMul (L)
//                                           V_4i+1 = M_R first row ─► MatGen+MatMul (R)
//                                           V_4i+2 = RC_L          ─► VecAdd (L)
//                                           V_4i+3 = RC_R          ─► VecAdd (R)
//   then Mix and S-box on the shared adder/multiplier arrays.
//
// MatGen streams matrix rows from (alpha, previous row) — only two rows are
// ever stored — while MatMul dot-products each row with the state through a
// pipelined adder tree; the combined latency is 6 + t + log2(t) cycles per
// matrix. Mid-round VecAdd/Mix/S-box hide behind the XOF generation of the
// next vectors; the final Mix costs t cycles of output streaming (§IV-B).
//
// The model is functional *and* timed: coefficients come from the real
// SHAKE128 stream, so the produced keystream is bit-identical to the
// reference software cipher and cycle counts vary with nonce/counter exactly
// as the paper reports.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/trace.hpp"
#include "hw/xof_unit.hpp"
#include "pasta/cipher.hpp"
#include "pasta/params.hpp"

namespace poe::hw {

/// Fixed micro-architecture latencies (beyond the XOF timing config).
struct ComputeTimingConfig {
  unsigned matmul_pipeline_fill = 6;  ///< MAC/mat-mul pipeline overhead
  unsigned vecadd_latency = 3;        ///< t parallel adders, pipelined
  unsigned mix_latency = 6;           ///< 3 chained t-wide additions
  unsigned sbox_feistel_latency = 4;  ///< 1 mul + 1 add, t-wide
  unsigned sbox_cube_latency = 6;     ///< 2 muls, t-wide
};

struct CycleStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t xof_last_word_cycle = 0;
  std::uint64_t permutations = 0;
  std::uint64_t words_drawn = 0;
  std::uint64_t words_rejected = 0;
  std::uint64_t xof_stall_cycles = 0;   ///< DataGen back-pressure
  std::uint64_t mat_engine_busy = 0;    ///< cycles MatGen/MatMul occupied
  std::uint64_t add_unit_busy = 0;
  std::uint64_t mul_unit_sbox_busy = 0;
  std::uint64_t compute_wait_cycles = 0;  ///< compute idle, waiting on XOF
};

struct BlockResult {
  pasta::Block keystream;  ///< t elements, bit-identical to software PASTA
  CycleStats stats;
};

/// A single transient fault injected into the datapath (the attack surface
/// of SASTA [30]: one fault in the keystream computation leaks key
/// information through the faulty ciphertext). Used by the countermeasure
/// study and failure-injection tests.
struct FaultInjection {
  std::size_t affine_layer = 0;  ///< inject after this affine layer
  bool left_half = true;
  std::size_t element = 0;       ///< state element to corrupt
  std::uint64_t delta = 1;       ///< additive error mod p (non-zero)
};

/// One PASTA keystream-block engine instance (variant + prime + timing).
class AcceleratorSim {
 public:
  explicit AcceleratorSim(const pasta::PastaParams& params,
                          XofTimingConfig xof_cfg = {},
                          ComputeTimingConfig compute_cfg = {});

  /// Run the permutation for one block and report keystream + cycle stats.
  /// `fault`, if given, corrupts one datapath value mid-computation;
  /// `trace`, if given, records the unit-level schedule (Fig. 3).
  BlockResult run_block(const std::vector<std::uint64_t>& key,
                        std::uint64_t nonce, std::uint64_t counter,
                        const FaultInjection* fault = nullptr,
                        ScheduleTrace* trace = nullptr) const;

  /// Encrypt a full message (block-serial, as the peripheral operates);
  /// returns ciphertext and the cycle total across blocks.
  struct EncryptResult {
    std::vector<std::uint64_t> ciphertext;
    std::uint64_t total_cycles = 0;
    std::vector<CycleStats> per_block;
  };
  EncryptResult encrypt(const std::vector<std::uint64_t>& key,
                        std::span<const std::uint64_t> msg,
                        std::uint64_t nonce) const;

  const pasta::PastaParams& params() const { return params_; }

 private:
  pasta::PastaParams params_;
  XofTimingConfig xof_cfg_;
  ComputeTimingConfig compute_cfg_;
};

}  // namespace poe::hw
