// Side-channel / fault-analysis countermeasures for the cryptoprocessor —
// the paper's second future-work direction (§VI), motivated by the SASTA
// single-fault attack on HHE schemes [30].
//
// Three standard hardware countermeasures are modelled on top of the cycle
// and area models, plus a fault-detection harness that exercises them
// against injected transient faults:
//
//  * temporal redundancy  — compute every block twice on the same datapath
//    and compare: ~2x cycles, tiny comparator area, detects transients.
//  * spatial redundancy   — duplicate the datapath and compare: ~2x the
//    variable area, one comparator, no cycle cost, detects transients and
//    single-unit permanent faults.
//  * arithmetic masking   — 2-share Boolean-free masking of the
//    key-dependent path (SCA hardening): doubles the shared multiplier /
//    adder arrays and adds cross-share products in the S-box; no detection,
//    protects against first-order power analysis.
//
// The same countermeasures applied to a PKE client accelerator scale from
// its much larger baseline — the comparison the paper proposes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/accelerator.hpp"
#include "hw/area_model.hpp"

namespace poe::hw {

enum class Countermeasure {
  kNone,
  kTemporalRedundancy,
  kSpatialRedundancy,
  kMasking,
};

std::string to_string(Countermeasure cm);

/// First-order cost factors of a countermeasure.
struct CountermeasureCost {
  double cycle_factor = 1.0;     ///< block latency multiplier
  double var_area_factor = 1.0;  ///< multiplier on the t-dependent area
  double fixed_area_factor = 1.0;  ///< multiplier on SHAKE/control area
  bool detects_transient_faults = false;
  bool first_order_sca_protected = false;
};

CountermeasureCost countermeasure_cost(Countermeasure cm);

/// Protected-block cycle count.
std::uint64_t protected_cycles(std::uint64_t base_cycles, Countermeasure cm);

/// Protected FPGA resources (variable/fixed split taken from the area
/// model's calibration).
FpgaResources protected_fpga(const AreaModel& model,
                             const pasta::PastaParams& params,
                             Countermeasure cm);

/// Outcome of running one block under a detection countermeasure with an
/// optional transient fault in the first execution.
struct DetectionResult {
  bool fault_injected = false;
  bool detected = false;
  std::uint64_t cycles = 0;               ///< total incl. redundant pass
  pasta::Block keystream;                 ///< from the clean pass
};

/// Execute one block with temporal redundancy: run twice (fault, if any,
/// hits only the first pass — transient), compare, and report detection.
DetectionResult run_with_temporal_redundancy(
    const AcceleratorSim& sim, const std::vector<std::uint64_t>& key,
    std::uint64_t nonce, std::uint64_t counter,
    const FaultInjection* fault = nullptr);

}  // namespace poe::hw
