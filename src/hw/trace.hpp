// Schedule tracing for the accelerator model: records when each hardware
// unit is busy and with what, and renders the result either as a text
// timeline (the Fig.-3 schedule, reconstructed from a real run) or as a VCD
// waveform viewable in GTKWave — the artefact an RTL engineer would expect
// next to the cycle counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace poe::hw {

enum class Unit {
  kXof,       ///< SHAKE128 squeeze + rejection sampling
  kMatEngine, ///< MatGen MAC array + MatMul multipliers/tree
  kVecAdd,    ///< t-wide modular adder array (RC add)
  kMixSbox,   ///< Mix and S-box passes on the shared units
};

const char* unit_name(Unit unit);

struct TraceEvent {
  Unit unit;
  std::uint64_t start = 0;  ///< first busy cycle
  std::uint64_t end = 0;    ///< first idle cycle after the op
  std::string label;        ///< e.g. "L0 matmul L"
};

/// Collects events during AcceleratorSim::run_block.
class ScheduleTrace {
 public:
  void add(Unit unit, std::uint64_t start, std::uint64_t end,
           std::string label);
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Busy cycles per unit.
  std::uint64_t busy_cycles(Unit unit) const;
  /// Utilisation of a unit over [0, total_cycles).
  double utilisation(Unit unit, std::uint64_t total_cycles) const;

  /// ASCII timeline (one row per unit, one column per `cycles_per_char`).
  void print_timeline(std::ostream& os, std::uint64_t total_cycles,
                      unsigned width = 100) const;

  /// Value-change-dump with one 1-bit busy signal per unit plus an ASCII
  /// label register; loads in GTKWave.
  void write_vcd(std::ostream& os, std::uint64_t total_cycles) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace poe::hw
