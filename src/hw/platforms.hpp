// Evaluation platforms of the paper (§IV-A): clock targets used to convert
// the accelerator's cycle counts into wall-clock latency.
#pragma once

#include <cstdint>
#include <string>

namespace poe::hw {

struct Platform {
  std::string name;
  double freq_hz;

  double cycles_to_us(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / freq_hz * 1e6;
  }
};

/// Artix-7 AC701 target (§IV-A ①).
inline Platform fpga_artix7() { return {"Artix-7 @75MHz", 75e6}; }
/// TSMC 28nm / ASAP7 7nm synthesis target (§IV-A ②).
inline Platform asic_1ghz() { return {"ASIC @1GHz", 1e9}; }
/// RISC-V SoC on 130nm/65nm (§IV-A ③).
inline Platform riscv_soc_100mhz() { return {"RISC-V SoC @100MHz", 100e6}; }
/// Intel Xeon E5-2699 v4 used by the PASTA paper's CPU numbers (§IV-C).
inline Platform cpu_xeon() { return {"Xeon E5-2699v4 @2.2GHz", 2.2e9}; }

}  // namespace poe::hw
