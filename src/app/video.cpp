#include "app/video.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "modular/modulus.hpp"
#include "pasta/cipher.hpp"

namespace poe::app {

Frame SyntheticCamera::next_frame() {
  Frame f;
  f.resolution = resolution_;
  f.pixels.resize(resolution_.pixels());
  const std::uint64_t phase = frame_index_++;
  std::size_t idx = 0;
  for (unsigned y = 0; y < resolution_.height; ++y) {
    for (unsigned x = 0; x < resolution_.width; ++x) {
      f.pixels[idx++] = static_cast<std::uint8_t>((x + 2 * y + 3 * phase));
    }
  }
  return f;
}

std::vector<std::uint64_t> pack_pixels(const Frame& frame,
                                       const pasta::PastaParams& params,
                                       unsigned pixels_per_element) {
  POE_ENSURE(pixels_per_element >= 1 &&
                 8 * pixels_per_element < params.prime_bits(),
             "packing does not fit below the prime");
  const std::size_t count =
      ceil_div(frame.pixels.size(), pixels_per_element);
  std::vector<std::uint64_t> out(count, 0);
  for (std::size_t i = 0; i < frame.pixels.size(); ++i) {
    out[i / pixels_per_element] |=
        static_cast<std::uint64_t>(frame.pixels[i])
        << (8 * (i % pixels_per_element));
  }
  return out;
}

Frame unpack_pixels(const std::vector<std::uint64_t>& elements,
                    const analytics::Resolution& resolution,
                    unsigned pixels_per_element) {
  Frame f;
  f.resolution = resolution;
  f.pixels.resize(resolution.pixels());
  for (std::size_t i = 0; i < f.pixels.size(); ++i) {
    f.pixels[i] = static_cast<std::uint8_t>(
        elements[i / pixels_per_element] >> (8 * (i % pixels_per_element)));
  }
  return f;
}

FrameEncryptor::FrameEncryptor(const pasta::PastaParams& params,
                               std::vector<std::uint64_t> key,
                               unsigned pixels_per_element)
    : params_(params),
      key_(std::move(key)),
      accel_(params),
      pixels_per_element_(pixels_per_element) {
  POE_ENSURE(8 * pixels_per_element_ < params_.prime_bits(),
             "packing does not fit below the prime");
}

EncryptedFrame FrameEncryptor::encrypt(const Frame& frame,
                                       std::uint64_t nonce) const {
  const auto elements = pack_pixels(frame, params_, pixels_per_element_);
  auto result = accel_.encrypt(key_, elements, nonce);
  EncryptedFrame out;
  out.ciphertext = std::move(result.ciphertext);
  out.cycles = result.total_cycles;
  out.bytes_on_wire = pasta::ciphertext_bytes(params_, out.ciphertext.size());
  return out;
}

Frame FrameEncryptor::decrypt(const EncryptedFrame& enc,
                              const analytics::Resolution& resolution,
                              std::uint64_t nonce) const {
  pasta::PastaCipher cipher(params_, key_);
  const auto elements = cipher.decrypt(enc.ciphertext, nonce);
  return unpack_pixels(elements, resolution, pixels_per_element_);
}

}  // namespace poe::app
