// Video-frame encryption application (paper §V): grayscale surveillance
// frames are packed into PASTA field elements, encrypted block-by-block on
// the accelerator, and streamed to the cloud.
//
// The paper's traces come from a 5G surveillance deployment; we substitute a
// synthetic frame source (moving-gradient pattern) — frame *content* does
// not affect the encryption datapath or the communication model.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/video_model.hpp"
#include "hw/accelerator.hpp"
#include "pasta/params.hpp"

namespace poe::app {

/// 8-bit grayscale frame.
struct Frame {
  analytics::Resolution resolution;
  std::vector<std::uint8_t> pixels;  ///< row-major
};

/// Deterministic synthetic frame source.
class SyntheticCamera {
 public:
  explicit SyntheticCamera(analytics::Resolution resolution)
      : resolution_(std::move(resolution)) {}

  /// A moving diagonal gradient with per-frame phase — cheap and non-trivial.
  Frame next_frame();

  const analytics::Resolution& resolution() const { return resolution_; }

 private:
  analytics::Resolution resolution_;
  std::uint64_t frame_index_ = 0;
};

/// Pack 8-bit pixels into field elements (pixels_per_element * 8 bits must
/// fit below the prime's bit width).
std::vector<std::uint64_t> pack_pixels(const Frame& frame,
                                       const pasta::PastaParams& params,
                                       unsigned pixels_per_element);

/// Inverse of pack_pixels.
Frame unpack_pixels(const std::vector<std::uint64_t>& elements,
                    const analytics::Resolution& resolution,
                    unsigned pixels_per_element);

/// Result of pushing one frame through the accelerator model.
struct EncryptedFrame {
  std::vector<std::uint64_t> ciphertext;  ///< field elements
  std::uint64_t cycles = 0;               ///< accelerator cycles consumed
  std::uint64_t bytes_on_wire = 0;        ///< serialised ciphertext size
};

/// Frame encryptor built on the cycle-accurate accelerator model.
class FrameEncryptor {
 public:
  FrameEncryptor(const pasta::PastaParams& params,
                 std::vector<std::uint64_t> key, unsigned pixels_per_element);

  EncryptedFrame encrypt(const Frame& frame, std::uint64_t nonce) const;

  /// Decrypt (client-side check path).
  Frame decrypt(const EncryptedFrame& enc,
                const analytics::Resolution& resolution,
                std::uint64_t nonce) const;

  unsigned pixels_per_element() const { return pixels_per_element_; }

 private:
  pasta::PastaParams params_;
  std::vector<std::uint64_t> key_;
  hw::AcceleratorSim accel_;
  unsigned pixels_per_element_;
};

}  // namespace poe::app
