#!/usr/bin/env python3
"""CI noise smoke: fail if an output budget leaves the safety band or the
tracked bound stops being a sound lower estimate.

Two invariants, per deliverable (see ARCHITECTURE.md §3h):

  1. BAND. band_low <= measured budget <= band_high. Below band_low the
     result is one op away from undecryptable; above band_high the server
     is carrying surplus modulus the parameter search / terminal output
     trim should have shed (the pre-right-sizing configs idled at ~91
     bits — exactly the regression this catches).
  2. SOUNDNESS. predicted <= measured + tolerance. The server-side tracked
     bound (no secret key) must never claim more budget than the secret
     key actually measures; the tolerance only absorbs log2 rounding in
     the measurement.

Usage: check_noise_budget.py [BENCH_hhe.json [MORE.json ...]]

Understands both emitter shapes: "benchmarks" records
(BENCH_hhe.json, BENCH_param_search.json — keys noise_budget_bits /
predicted_budget_bits) and "sweep" points (BENCH_service.json — keys
min_noise_budget_bits / predicted_budget_bits). Thresholds live in
scripts/noise_budget.json next to this script; update them deliberately
(with a rationale in the PR) when the band policy changes.
"""

import json
import pathlib
import sys


def records(path: pathlib.Path):
    doc = json.loads(path.read_text())
    for b in doc.get("benchmarks", []):
        if "noise_budget_bits" in b:
            yield b.get("name", "?"), b["noise_budget_bits"], b.get(
                "predicted_budget_bits")
    for p in doc.get("sweep", []):
        if "min_noise_budget_bits" in p:
            name = f"sweep@{p.get('clients', '?')}_clients"
            yield name, p["min_noise_budget_bits"], p.get(
                "predicted_budget_bits")


def main() -> int:
    paths = [pathlib.Path(p) for p in (sys.argv[1:] or ["BENCH_hhe.json"])]
    cfg_path = pathlib.Path(__file__).resolve().parent / "noise_budget.json"
    cfg = json.loads(cfg_path.read_text())
    lo, hi = cfg["band_low"], cfg["band_high"]
    tol = cfg["soundness_tolerance_bits"]

    failures = []
    checked = 0
    for path in paths:
        for name, measured, predicted in records(path):
            checked += 1
            problems = []
            if measured < lo:
                problems.append(f"measured {measured} < band_low {lo}")
            if measured > hi:
                problems.append(
                    f"measured {measured} > band_high {hi} (surplus modulus "
                    "— did the search or the output trim regress?)")
            if predicted is not None and predicted > measured + tol:
                problems.append(
                    f"predicted {predicted} > measured {measured} + {tol} "
                    "(tracked bound is not a sound lower estimate)")
            status = "OK" if not problems else "; ".join(problems)
            print(f"{path}:{name}: measured={measured} "
                  f"predicted={predicted} [{lo}, {hi}] {status}")
            failures.extend(f"{path}:{name}: {p}" for p in problems)

    if checked == 0:
        print("no noise-budget records found in the given files")
        return 1
    if failures:
        print("\nNoise budget check FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("Noise budget check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
