#!/usr/bin/env python3
"""CI perf smoke: fail if cross-tenant batch occupancy regresses.

Occupancy (blocks per batch / SIMD tile capacity) is the quantity the
cross-tenant packing scheduler exists to maximise: per-client batching
idled at 0.125 with 8 single-tenant batches, packing fills one shared
batch to 1.0 (see ARCHITECTURE.md §3f). It is a deterministic function of
the scheduler's packing decisions for a fixed workload — no runner-speed
noise — so a breach means somebody broke batch formation, not that CI was
slow. The packed-vs-unpacked speedup floor is wall-clock based and
deliberately loose; it guards against packing silently becoming a no-op.

Usage: check_occupancy_budget.py [BENCH_service.json]

Budgets live in scripts/occupancy_budget.json next to this script; update
them deliberately (with a rationale in the PR) when the workload shape
changes.
"""

import json
import pathlib
import sys


def main() -> int:
    bench_path = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "BENCH_service.json")
    budget_path = pathlib.Path(__file__).resolve().parent / "occupancy_budget.json"

    bench = json.loads(bench_path.read_text())
    budgets = json.loads(budget_path.read_text())

    by_clients = {str(p["clients"]): p for p in bench.get("sweep", [])}
    failures = []
    for clients, floor in budgets["occupancy_min_by_clients"].items():
        point = by_clients.get(clients)
        if point is None:
            failures.append(f"{clients} clients: missing from {bench_path}")
            continue
        got = point.get("avg_batch_occupancy")
        status = "OK" if got >= floor else "UNDER FLOOR"
        print(f"{clients} clients: avg_batch_occupancy={got} "
              f"(floor {floor}) {status}")
        if got < floor:
            failures.append(
                f"{clients} clients: occupancy {got} below floor {floor}")

    speedup_floor = budgets.get("packed_vs_unpacked_speedup_min")
    if speedup_floor is not None:
        got = bench.get("packed_vs_unpacked_speedup")
        if got is None:
            failures.append(f"packed_vs_unpacked_speedup: missing from {bench_path}")
        else:
            status = "OK" if got >= speedup_floor else "UNDER FLOOR"
            print(f"packed_vs_unpacked_speedup={got} "
                  f"(floor {speedup_floor}) {status}")
            if got < speedup_floor:
                failures.append(
                    f"packed_vs_unpacked_speedup {got} below floor {speedup_floor}")

    if failures:
        print("\nOccupancy budget check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("Occupancy budget check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
