#!/usr/bin/env python3
"""CI perf smoke: fail if the warmed-up serving path allocates or copies.

The hot-path contract (ARCHITECTURE.md §3b) is that a warmed-up transcipher
block is ALLOCATION-FREE: every slab it touches comes out of BufferPool
reuse (zero pool misses) and whole-poly copy traffic stays at the small,
deliberate floor (the key-ciphertext snapshot plus one hoist c0 per affine
layer). Both counters are deterministic for a fixed circuit shape, so —
like the NTT budget — a breach is a real regression, not runner noise:
somebody reintroduced a per-diagonal temporary, an allocating rotation, or
a ciphertext copy into the serving loop.

Usage: check_alloc_budget.py [BENCH_hhe.json [BENCH_service.json]]

BENCH_hhe.json is checked against the per-benchmark budgets (only records
named in the budget file are pinned; the coefficient-wise record is left
cold by the bench on purpose). BENCH_service.json, when given, must show
zero steady-state pool misses at EVERY sweep point and bounded copy bytes
at the largest client count.

Budgets live in scripts/alloc_budget.json next to this script; update them
deliberately (with a rationale in the PR) when the circuit changes shape.
"""

import json
import pathlib
import sys


def main() -> int:
    args = sys.argv[1:] or ["BENCH_hhe.json", "BENCH_service.json"]
    hhe_path = pathlib.Path(args[0])
    service_path = pathlib.Path(args[1]) if len(args) > 1 else None
    budget_path = pathlib.Path(__file__).resolve().parent / "alloc_budget.json"
    budgets = json.loads(budget_path.read_text())

    failures = []

    by_name = {
        b["name"]: b
        for b in json.loads(hhe_path.read_text()).get("benchmarks", [])
    }
    for name in budgets["pool_misses_must_be_zero"]:
        record = by_name.get(name)
        if record is None:
            failures.append(f"{name}: missing from {hhe_path}")
            continue
        got = record.get("pool_misses")
        status = "OK" if got == 0 else "ALLOCATED"
        print(f"{name}: pool_misses={got} (must be 0) {status}")
        if got != 0:
            failures.append(
                f"{name}: {got} pool misses in a warmed-up block "
                "(steady state must be allocation-free)"
            )
    for name, limit in budgets["bytes_copied_max"].items():
        record = by_name.get(name)
        if record is None:
            failures.append(f"{name}: missing from {hhe_path}")
            continue
        got = record.get("bytes_copied")
        status = "OK" if got <= limit else "OVER BUDGET"
        print(f"{name}: bytes_copied={got} (budget {limit}) {status}")
        if got > limit:
            failures.append(f"{name}: bytes_copied={got} exceeds budget {limit}")

    if service_path is not None:
        sweep_budget = budgets["service_sweep"]
        sweep = json.loads(service_path.read_text()).get("sweep", [])
        if not sweep:
            failures.append(f"{service_path}: no sweep points")
        for point in sweep:
            clients = point.get("clients")
            misses = point.get("pool_misses")
            status = "OK" if misses == 0 else "ALLOCATED"
            print(f"service sweep @ {clients} clients: pool_misses={misses} "
                  f"(must be 0) {status}")
            if sweep_budget["pool_misses_must_be_zero"] and misses != 0:
                failures.append(
                    f"service sweep @ {clients} clients: {misses} pool "
                    "misses after warm-up"
                )
        if sweep:
            peak = max(sweep, key=lambda p: p.get("clients", 0))
            limit = sweep_budget["bytes_copied_max_at_max_clients"]
            got = peak.get("bytes_copied")
            status = "OK" if got <= limit else "OVER BUDGET"
            print(f"service sweep @ {peak.get('clients')} clients: "
                  f"bytes_copied={got} (budget {limit}) {status}")
            if got > limit:
                failures.append(
                    f"service sweep @ {peak.get('clients')} clients: "
                    f"bytes_copied={got} exceeds budget {limit}"
                )

    if failures:
        print("\nallocation budget check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("Allocation budget check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
