#!/usr/bin/env python3
"""CI perf smoke: fail if process-level scale-out stops scaling.

bench_service's multi-process mode forks this repo's service into a
key-manager process plus {1, 2} single-threaded worker-shard processes and
drives a weakly-scaled workload (one full batch of clients per shard)
through the front-end Router over real sockets. On a multi-core host the
shards compute concurrently, so aggregate 2-shard throughput must reach
min_speedup_2_shards x the single-shard point — a breach means the scale-out
path serialized somewhere (the router collecting before every shard was
sent its wave, a worker inheriting the parent's thread pool, framing
overhead swamping evaluation).

The ratio is only meaningful when the recorded host actually has cores for
the shards to land on: below min_cores_to_enforce (e.g. a single-core
container, where two shard processes timeshare one CPU) the script prints
the measurement and passes. The bench records host_cores in the JSON, so
the gate decision is reproducible from the artifact alone.

Usage: check_shard_budget.py [BENCH_service.json]

Budgets live in scripts/shard_budget.json; update them deliberately (with a
rationale in the PR) when the deployment shape changes.
"""

import json
import pathlib
import sys


def main() -> int:
    path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                        else "BENCH_service.json")
    budget_path = pathlib.Path(__file__).resolve().parent / "shard_budget.json"
    budgets = json.loads(budget_path.read_text())
    record = json.loads(path.read_text())

    mp = record.get("multiprocess")
    if mp is None:
        print(f"FAIL: no 'multiprocess' section in {path} "
              "(bench_service predates the multi-process mode?)")
        return 1

    failures = []
    if not mp.get("ok", False):
        failures.append("the multi-process sweep itself reported failure")

    sweep = {p["shards"]: p for p in mp.get("sweep", [])}
    for shards in (1, 2):
        point = sweep.get(shards)
        if point is None:
            failures.append(f"missing the {shards}-shard sweep point")
            continue
        if point["requests_ok"] != point["clients"]:
            failures.append(
                f"{shards}-shard point: {point['requests_ok']} of "
                f"{point['clients']} requests ok (all must succeed)")
        print(f"{shards} shard(s): {point['clients']} clients, "
              f"{point['blocks']} blocks, {point['blocks_per_s']:.2f} "
              f"blocks/s, {point['requests_ok']}/{point['clients']} ok")

    speedup = mp.get("speedup_2_shards")
    floor = budgets["min_speedup_2_shards"]
    host_cores = mp.get("host_cores", 0)
    min_cores = budgets["min_cores_to_enforce"]
    if speedup is None:
        failures.append("missing speedup_2_shards")
    elif host_cores < min_cores:
        print(f"speedup_2_shards={speedup:.2f}x on a {host_cores}-core host: "
              f"floor {floor}x NOT enforced (needs >= {min_cores} cores — "
              "two shard processes would just timeshare one CPU)")
    else:
        status = "OK" if speedup >= floor else "REGRESSED"
        print(f"speedup_2_shards={speedup:.2f}x "
              f"(floor {floor}x, {host_cores} cores) {status}")
        if speedup < floor:
            failures.append(
                f"2-shard aggregate throughput is {speedup:.2f}x the "
                f"single-shard point; the scale-out floor is {floor}x")

    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nshard scale-out budget OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
