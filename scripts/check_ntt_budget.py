#!/usr/bin/env python3
"""CI perf smoke: fail if the transcipher NTT counters regress.

Counter budgets are a STABLE proxy for wall-clock perf: the forward-NTT
count of a transcipher block is deterministic for a given circuit shape
(no runner-speed noise), so a budget breach means somebody reintroduced
per-rotation NTT work that hoisting is supposed to amortise away
(see ARCHITECTURE.md §3d).

Usage: check_ntt_budget.py [BENCH_hhe.json]

Budgets live in scripts/ntt_budget.json next to this script; update them
deliberately (with a rationale in the PR) when the circuit changes shape.
"""

import json
import pathlib
import sys


def main() -> int:
    bench_path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "BENCH_hhe.json")
    budget_path = pathlib.Path(__file__).resolve().parent / "ntt_budget.json"

    bench = json.loads(bench_path.read_text())
    budgets = json.loads(budget_path.read_text())["ntt_forward_max"]

    by_name = {b["name"]: b for b in bench.get("benchmarks", [])}
    failures = []
    for name, limit in budgets.items():
        record = by_name.get(name)
        if record is None:
            failures.append(f"{name}: missing from {bench_path}")
            continue
        got = record.get("ntt_forward")
        status = "OK" if got <= limit else "OVER BUDGET"
        print(f"{name}: ntt_forward={got} (budget {limit}) {status}")
        if got > limit:
            failures.append(f"{name}: ntt_forward={got} exceeds budget {limit}")

    if failures:
        print("\nNTT budget check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("NTT budget check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
