#!/usr/bin/env python3
"""CI perf smoke: fail if the transcipher NTT counters regress.

Counter budgets are a STABLE proxy for wall-clock perf: the forward-NTT
count of a transcipher block is deterministic for a given circuit shape
(no runner-speed noise), so a budget breach means somebody reintroduced
per-rotation NTT work that hoisting is supposed to amortise away
(see ARCHITECTURE.md §3d).

Usage: check_ntt_budget.py [BENCH_hhe.json [MORE.json ...]]

The first file is checked against the budgets. When more files are given
(e.g. the same bench re-run under POE_KERNEL_BACKEND=scalar), the script
additionally asserts that every benchmark's ntt_forward count is IDENTICAL
across all files: kernel backends are drop-in arithmetic and must not
change how many NTTs the circuit performs (ARCHITECTURE.md §3g).

Budgets live in scripts/ntt_budget.json next to this script; update them
deliberately (with a rationale in the PR) when the circuit changes shape.
"""

import json
import pathlib
import sys


def load_counts(path: pathlib.Path) -> dict:
    bench = json.loads(path.read_text())
    return {b["name"]: b for b in bench.get("benchmarks", [])}


def main() -> int:
    paths = [pathlib.Path(p) for p in (sys.argv[1:] or ["BENCH_hhe.json"])]
    budget_path = pathlib.Path(__file__).resolve().parent / "ntt_budget.json"

    by_name = load_counts(paths[0])
    budgets = json.loads(budget_path.read_text())["ntt_forward_max"]

    failures = []
    for name, limit in budgets.items():
        record = by_name.get(name)
        if record is None:
            failures.append(f"{name}: missing from {paths[0]}")
            continue
        got = record.get("ntt_forward")
        status = "OK" if got <= limit else "OVER BUDGET"
        print(f"{name}: ntt_forward={got} (budget {limit}) {status}")
        if got > limit:
            failures.append(f"{name}: ntt_forward={got} exceeds budget {limit}")

    # Cross-file invariance: same circuit, different kernel backend, same
    # NTT count — a divergence means a backend changed evaluation strategy
    # rather than just arithmetic.
    for other in paths[1:]:
        other_by_name = load_counts(other)
        backend = json.loads(other.read_text()).get("kernel_backend", "?")
        diverged = False
        for name, record in by_name.items():
            mine = record.get("ntt_forward")
            theirs = other_by_name.get(name, {}).get("ntt_forward")
            if theirs is None:
                failures.append(f"{name}: missing from {other}")
                diverged = True
            elif theirs != mine:
                failures.append(
                    f"{name}: ntt_forward={theirs} in {other} "
                    f"(backend {backend}) != {mine} in {paths[0]}"
                )
                diverged = True
        print(f"{other} (backend {backend}): "
              + ("DIVERGED from" if diverged else "ntt_forward counts match")
              + f" {paths[0]}")

    if failures:
        print("\nNTT budget check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("NTT budget check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
